//! The rule set: what this workspace bans, where, and why.
//!
//! Every rule is *lexical/structural*: it reasons over the token stream
//! from [`crate::lex`] plus light brace-structure recovery (`#[cfg(test)]`
//! regions, `impl` blocks). There is no type inference — rules D2 and C1
//! use name-based heuristics, documented on each rule, and the `lint.toml`
//! allowlist (see [`crate::config`]) is the escape hatch for the rare
//! deliberate exception. The full catalogue with rationale lives in
//! DESIGN.md, "Static analysis".

use std::collections::BTreeSet;
use std::fmt;

use crate::lex::{lex, Lexed, Token};

/// The six rule families. Stable IDs — `lint.toml` and CLI flags refer to
/// these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No wall-clock (`SystemTime`, `Instant`, `thread::sleep`) in
    /// simulation-facing crates: all time comes from the simulated clock.
    D1,
    /// No `HashMap`/`HashSet` *iteration* in deterministic crates:
    /// iteration order is seeded-random per process. Construction and
    /// point lookup are fine.
    D2,
    /// No `static mut`, `std::process::abort`, `todo!`/`unimplemented!`
    /// outside `#[cfg(test)]`.
    D3,
    /// No ambient randomness (`thread_rng`, `rand::random`,
    /// `RandomState`) outside `#[cfg(test)]`: every random stream is a
    /// seeded, owned RNG.
    D4,
    /// Every `unsafe` block/fn/impl is immediately preceded by a
    /// `// SAFETY:` comment stating the invariant that makes it sound.
    S1,
    /// Every `*Stats` struct's closure-identity method (`closes` /
    /// `*_closes`) is referenced from at least one test.
    C1,
}

impl Rule {
    pub const ALL: [Rule; 6] = [Rule::D1, Rule::D2, Rule::D3, Rule::D4, Rule::S1, Rule::C1];

    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::S1 => "S1",
            Rule::C1 => "C1",
        }
    }

    pub fn title(self) -> &'static str {
        match self {
            Rule::D1 => "wall-clock in simulation-facing crate",
            Rule::D2 => "hash-order iteration in deterministic crate",
            Rule::D3 => "banned construct (static mut / abort / todo)",
            Rule::D4 => "ambient randomness outside tests",
            Rule::S1 => "unsafe without SAFETY comment",
            Rule::C1 => "untested closure-identity method",
        }
    }

    pub fn from_id(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Crates where *all* time must come from the simulated clock (rule D1).
pub const SIM_FACING: [&str; 5] =
    ["dta-sim", "dta-net", "dta-translator", "dta-collector", "dta-reporter"];

/// Crates on the deterministic path to `ScenarioReport`, goldens, or
/// collector memory (rule D2): the sim-facing set plus everything they are
/// built from.
pub const DETERMINISTIC: [&str; 9] = [
    "dta-sim",
    "dta-net",
    "dta-translator",
    "dta-collector",
    "dta-reporter",
    "dta-core",
    "dta-hash",
    "dta-rdma",
    "dta-switch",
];

/// Hash-collection methods whose visit order is the seeded-random bucket
/// order (rule D2).
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// How a file participates in analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A `crates/*/src/**/*.rs` file: all rules run on it.
    Analyzed,
    /// A `crates/*/tests/**/*.rs` file: scanned only as C1's test-reference
    /// corpus (integration tests are all test code by construction).
    TestOnly,
}

/// One input file, already read.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes (the diagnostic anchor).
    pub path: String,
    /// The `crates/<dir>` the file belongs to, e.g. `dta-collector`.
    pub crate_dir: String,
    pub kind: FileKind,
    pub src: String,
}

/// One finding: `file:line: RULE: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// A closure-identity method definition awaiting a test reference (C1).
#[derive(Debug)]
struct ClosesDef {
    file: String,
    line: usize,
    impl_type: String,
    method: String,
}

/// Run every rule over `files` and return the raw (pre-allowlist)
/// diagnostics, sorted by file, line, rule.
pub fn analyze(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut closes_defs: Vec<ClosesDef> = Vec::new();
    // Every `closes`/`*_closes` identifier seen in test context anywhere
    // in the workspace (cfg(test) modules or tests/ files).
    let mut test_refs: BTreeSet<String> = BTreeSet::new();

    for f in files {
        let lx = lex(&f.src);
        let in_test = test_regions(&lx.tokens);
        match f.kind {
            FileKind::TestOnly => {
                // Only C1 references come from integration-test files.
                for t in &lx.tokens {
                    if is_closes_name(&t.text) {
                        test_refs.insert(t.text.clone());
                    }
                }
            }
            FileKind::Analyzed => {
                for (i, t) in lx.tokens.iter().enumerate() {
                    if in_test[i] && is_closes_name(&t.text) {
                        test_refs.insert(t.text.clone());
                    }
                }
                analyze_file(f, &lx, &in_test, &mut diags, &mut closes_defs);
            }
        }
    }

    for d in closes_defs {
        if !test_refs.contains(&d.method) {
            diags.push(Diagnostic {
                rule: Rule::C1,
                file: d.file,
                line: d.line,
                message: format!(
                    "`{}::{}` is a closure identity no test ever checks; \
                     reference it from a test or it is dead accounting",
                    d.impl_type, d.method
                ),
            });
        }
    }

    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
    diags
}

fn is_closes_name(s: &str) -> bool {
    s == "closes" || s.ends_with("_closes")
}

fn is_ident(t: &Token) -> bool {
    t.text.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
}

/// All single-file rules (D1–D4, S1) plus C1 definition collection.
fn analyze_file(
    f: &SourceFile,
    lx: &Lexed,
    in_test: &[bool],
    diags: &mut Vec<Diagnostic>,
    closes_defs: &mut Vec<ClosesDef>,
) {
    let toks = &lx.tokens;
    let sim_facing = SIM_FACING.contains(&f.crate_dir.as_str());
    let deterministic = DETERMINISTIC.contains(&f.crate_dir.as_str());
    let hash_names = if deterministic { hash_collection_names(toks) } else { BTreeSet::new() };
    let impl_types = impl_spans(toks);
    let src_lines: Vec<&str> = f.src.lines().collect();
    // Lines containing an `unsafe` token (so one SAFETY comment can cover
    // a run of consecutive `unsafe impl` lines).
    let unsafe_lines: BTreeSet<usize> =
        toks.iter().filter(|t| t.is_ident("unsafe")).map(|t| t.line).collect();
    let mut s1_checked: BTreeSet<usize> = BTreeSet::new();

    let push = |diags: &mut Vec<Diagnostic>, rule: Rule, line: usize, message: String| {
        diags.push(Diagnostic { rule, file: f.path.clone(), line, message });
    };

    for (i, t) in toks.iter().enumerate() {
        let test = in_test[i];

        // ---- S1: unsafe must carry a SAFETY comment (tests included —
        // an unsound test is still unsound). -------------------------------
        if t.is_ident("unsafe")
            && s1_checked.insert(t.line)
            && !safety_covered(t.line, &src_lines, &unsafe_lines)
        {
            push(
                diags,
                Rule::S1,
                t.line,
                "`unsafe` without an immediately preceding `// SAFETY:` comment \
                 stating the invariant that makes it sound"
                    .to_string(),
            );
        }

        if test {
            continue; // everything below is exempt under #[cfg(test)]
        }

        // ---- D1: wall-clock in simulation-facing crates ------------------
        if sim_facing {
            if t.is_ident("SystemTime") || t.is_ident("Instant") {
                push(
                    diags,
                    Rule::D1,
                    t.line,
                    format!(
                        "wall-clock `{}` in simulation-facing crate `{}`: \
                         all time must come from the simulated clock",
                        t.text, f.crate_dir
                    ),
                );
            }
            if t.is_ident("sleep") && path_prefix_is(toks, i, "thread") {
                push(
                    diags,
                    Rule::D1,
                    t.line,
                    format!(
                        "`thread::sleep` in simulation-facing crate `{}`: \
                         blocking real time desynchronizes the simulated clock",
                        f.crate_dir
                    ),
                );
            }
        }

        // ---- D2: hash-order iteration ------------------------------------
        if deterministic && is_ident(t) && hash_names.contains(&t.text) {
            if let Some(m) = toks.get(i + 2) {
                if toks[i + 1].text == "." && ITER_METHODS.contains(&m.text.as_str()) {
                    push(
                        diags,
                        Rule::D2,
                        m.line,
                        format!(
                            "`.{}()` on hash collection `{}`: iteration order is \
                             seeded-random; use a BTree container or sort first",
                            m.text, t.text
                        ),
                    );
                }
            }
            // `for pat in [&[mut]] name` — direct IntoIterator use.
            let mut k = i;
            while k > 0 && (toks[k - 1].text == "&" || toks[k - 1].is_ident("mut")) {
                k -= 1;
            }
            if k > 0 && toks[k - 1].is_ident("in") {
                push(
                    diags,
                    Rule::D2,
                    t.line,
                    format!(
                        "`for … in {}` iterates a hash collection: order is \
                         seeded-random; use a BTree container or sort first",
                        t.text
                    ),
                );
            }
        }

        // ---- D3: banned constructs ---------------------------------------
        if t.is_ident("static") && toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            push(
                diags,
                Rule::D3,
                t.line,
                "`static mut` is unsynchronized global state; use an atomic, \
                 a lock, or thread_local"
                    .to_string(),
            );
        }
        if (t.is_ident("todo") || t.is_ident("unimplemented"))
            && toks.get(i + 1).is_some_and(|n| n.text == "!")
        {
            push(
                diags,
                Rule::D3,
                t.line,
                format!("`{}!` outside #[cfg(test)]: unfinished code cannot ship", t.text),
            );
        }
        if t.is_ident("abort") && path_prefix_is(toks, i, "process") {
            push(
                diags,
                Rule::D3,
                t.line,
                "`process::abort` skips destructors and poisons nothing; \
                 panic (or return an error) instead"
                    .to_string(),
            );
        }

        // ---- D4: ambient randomness --------------------------------------
        if t.is_ident("thread_rng") || t.is_ident("RandomState") {
            push(
                diags,
                Rule::D4,
                t.line,
                format!(
                    "`{}` is ambient, unseeded randomness: thread every RNG \
                     from the scenario seed",
                    t.text
                ),
            );
        }
        if t.is_ident("random") && path_prefix_is(toks, i, "rand") {
            push(
                diags,
                Rule::D4,
                t.line,
                "`rand::random` is ambient, unseeded randomness: thread every \
                 RNG from the scenario seed"
                    .to_string(),
            );
        }

        // ---- C1: closure-identity definitions ----------------------------
        if t.is_ident("fn") {
            if let Some(name) = toks.get(i + 1) {
                if is_closes_name(&name.text) {
                    if let Some(ty) = impl_stats_type_at(&impl_types, i) {
                        closes_defs.push(ClosesDef {
                            file: f.path.clone(),
                            line: name.line,
                            impl_type: ty,
                            method: name.text.clone(),
                        });
                    }
                }
            }
        }
    }
}

/// True when tokens `i-2..i` are `prefix ::` — i.e. token `i` is the last
/// segment of a path ending in `prefix::<tok>`.
fn path_prefix_is(toks: &[Token], i: usize, prefix: &str) -> bool {
    i >= 3
        && toks[i - 1].text == ":"
        && toks[i - 2].text == ":"
        && toks[i - 3].is_ident(prefix)
}

/// Token-index ranges covered by `#[cfg(test)]` (exact attribute match —
/// the workspace convention; `cfg_attr`/`all(test, …)` forms are not
/// recognized and would simply keep their items in scope, which errs
/// strict).
fn test_regions(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].text == "("
            && toks[i + 4].is_ident("test")
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while j < toks.len() && toks[j].text == "#" {
            j = skip_attr(toks, j);
        }
        // The item runs to its opening brace's close, or to a bare `;`.
        let mut depth = 0usize;
        let mut end = toks.len();
        for (k, t) in toks.iter().enumerate().skip(j) {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end = k + 1;
                    break;
                }
                _ => {}
            }
        }
        for m in mask.iter_mut().take(end).skip(i) {
            *m = true;
        }
        i = end;
    }
    mask
}

/// Skip one `#[…]` attribute starting at the `#` token; returns the index
/// past its closing `]`.
fn skip_attr(toks: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if toks.get(j).map(|t| t.text.as_str()) != Some("[") {
        return i + 1;
    }
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// `(start_token, end_token, type_name)` for every `impl` block.
fn impl_spans(toks: &[Token]) -> Vec<(usize, usize, String)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip the generic parameter list, if any.
        if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
            let mut depth = 0usize;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Collect the header up to the opening brace; the self type is the
        // last path segment before `<`/`where`, after `for` when present.
        let mut header: Vec<&Token> = Vec::new();
        let mut angle = 0usize;
        let mut body_open = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle = angle.saturating_sub(1),
                "{" if angle == 0 => {
                    body_open = Some(j);
                    break;
                }
                ";" if angle == 0 => break, // e.g. a macro'd `impl …;`
                _ if angle == 0 => header.push(&toks[j]),
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        let after_for = header.iter().rposition(|t| t.is_ident("for"));
        let slice = match after_for {
            Some(p) => &header[p + 1..],
            None => &header[..],
        };
        let name = slice
            .iter()
            .take_while(|t| !t.is_ident("where"))
            .filter(|t| is_ident(t))
            .last()
            .map(|t| t.text.clone())
            .unwrap_or_default();
        // Find the body's closing brace.
        let mut depth = 0usize;
        let mut k = open;
        let mut close = toks.len();
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        spans.push((open, close, name));
        i = open + 1; // nested impls are rare; rescan inside is harmless
    }
    spans
}

/// The `*Stats` type whose `impl` body contains token index `i`, if any.
/// Inner spans win over outer ones (spans are pushed outermost-first).
fn impl_stats_type_at(spans: &[(usize, usize, String)], i: usize) -> Option<String> {
    spans
        .iter()
        .rfind(|(s, e, ty)| i > *s && i < *e && ty.ends_with("Stats"))
        .map(|(_, _, ty)| ty.clone())
}

/// Does the `unsafe` on `line` have a SAFETY comment immediately above?
///
/// Walks upward from the line, skipping attribute lines and other
/// `unsafe`-bearing lines (one comment covers a run of consecutive
/// `unsafe impl`s), then requires the contiguous comment block it lands on
/// to contain `SAFETY:` (block comments and `/// # Safety` doc sections
/// also count).
fn safety_covered(line: usize, src_lines: &[&str], unsafe_lines: &BTreeSet<usize>) -> bool {
    let mut cur = line.saturating_sub(1); // 1-based line above
    while cur >= 1 {
        let t = src_lines.get(cur - 1).map(|s| s.trim()).unwrap_or("");
        if t.starts_with("#[") || t == "#" {
            cur -= 1;
            continue;
        }
        if unsafe_lines.contains(&cur) {
            cur -= 1;
            continue;
        }
        // A statement head the unsafe expression continues from (`let x =`,
        // an open call, a tuple element): the comment sits above the
        // statement, not above the wrapped line.
        if t.ends_with('=')
            || t.ends_with('(')
            || t.ends_with(',')
            || t.ends_with("&&")
            || t.ends_with("||")
        {
            cur -= 1;
            continue;
        }
        if t.starts_with("//") || t.ends_with("*/") {
            // Scan the contiguous comment block upward.
            let mut c = cur;
            let mut in_block = t.ends_with("*/") && !t.starts_with("/*");
            while c >= 1 {
                let lt = src_lines.get(c - 1).map(|s| s.trim()).unwrap_or("");
                let is_comment = lt.starts_with("//") || in_block || lt.ends_with("*/");
                if !is_comment {
                    break;
                }
                if lt.contains("SAFETY:") || lt.contains("# Safety") {
                    return true;
                }
                if in_block && lt.starts_with("/*") {
                    in_block = false;
                } else if !in_block && lt.ends_with("*/") && !lt.starts_with("/*") {
                    in_block = true;
                }
                c -= 1;
            }
            return false;
        }
        return false;
    }
    false
}

/// Names declared in this file as `HashMap`/`HashSet` (fields, params, and
/// `let name = Hash…::…` bindings). Purely lexical: a same-named `Vec`
/// elsewhere in the file would be over-flagged, which errs strict and is
/// what the allowlist is for.
fn hash_collection_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over `std :: collections ::`-style path segments, then
        // over reference sigils (`name: &mut HashMap<…>` is a declaration
        // too — iteration through the borrow is just as order-random).
        let mut k = i;
        while k >= 3 && toks[k - 1].text == ":" && toks[k - 2].text == ":" && is_ident(&toks[k - 3])
        {
            k -= 3;
        }
        while k >= 1 && (toks[k - 1].text == "&" || toks[k - 1].is_ident("mut")) {
            k -= 1;
        }
        if k >= 2 && toks[k - 1].text == ":" && is_ident(&toks[k - 2]) {
            // `name: [path::]HashMap<…>` — field, param, or typed let.
            names.insert(toks[k - 2].text.clone());
            continue;
        }
        // `let [mut] name = HashMap::new()` and friends.
        if i >= 2 && toks[i - 1].text == "=" && is_ident(&toks[i - 2]) {
            let n = &toks[i - 2];
            if !n.is_ident("mut") {
                names.insert(n.text.clone());
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_dir: &str, src: &str) -> SourceFile {
        SourceFile {
            path: format!("crates/{crate_dir}/src/test_input.rs"),
            crate_dir: crate_dir.to_string(),
            kind: FileKind::Analyzed,
            src: src.to_string(),
        }
    }

    fn rules_hit(crate_dir: &str, src: &str) -> Vec<Rule> {
        analyze(&[file(crate_dir, src)]).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d1_only_in_sim_facing_crates() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_hit("dta-collector", src), vec![Rule::D1, Rule::D1]);
        assert_eq!(rules_hit("bench", src), vec![]);
    }

    #[test]
    fn d1_exempt_under_cfg_test() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::time::Instant;\n  fn f() { let _ = Instant::now(); }\n}\n";
        assert_eq!(rules_hit("dta-sim", src), vec![]);
    }

    #[test]
    fn d2_flags_iteration_not_lookup() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u32, u32> }\n\
                   impl S {\n\
                     fn ok(&self) -> Option<&u32> { self.m.get(&1) }\n\
                     fn bad(&self) -> Vec<u32> { self.m.keys().copied().collect() }\n\
                   }\n";
        assert_eq!(rules_hit("dta-translator", src), vec![Rule::D2]);
    }

    #[test]
    fn d2_for_loop_over_set() {
        let src = "use std::collections::HashSet;\n\
                   fn f(used: &HashSet<u64>) { for x in used { drop(x); } }\n";
        assert_eq!(rules_hit("dta-rdma", src), vec![Rule::D2]);
    }

    #[test]
    fn d3_and_d4_everywhere() {
        let src = "static mut COUNTER: u32 = 0;\nfn f() { todo!() }\n";
        assert_eq!(rules_hit("bench", src), vec![Rule::D3, Rule::D3]);
        let src2 = "fn f() -> u32 { rand::random() }\n";
        assert_eq!(rules_hit("dta-analysis", src2), vec![Rule::D4]);
    }

    #[test]
    fn s1_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(rules_hit("dta-core", bad), vec![Rule::S1]);
        let good = "fn f(p: *const u8) -> u8 {\n  // SAFETY: caller guarantees p is valid.\n  unsafe { *p }\n}\n";
        assert_eq!(rules_hit("dta-core", good), vec![]);
    }

    #[test]
    fn s1_one_comment_covers_unsafe_impl_run() {
        let src = "// SAFETY: stripe access is guarded by per-stripe locks.\n\
                   unsafe impl Sync for S {}\n\
                   unsafe impl Send for S {}\n";
        assert_eq!(rules_hit("dta-rdma", src), vec![]);
    }

    #[test]
    fn c1_untested_closes_is_flagged_and_test_ref_clears_it() {
        let untested = "pub struct FooStats { a: u64 }\n\
                        impl FooStats { pub fn ledger_closes(&self) -> bool { self.a == 0 } }\n";
        assert_eq!(rules_hit("dta-reporter", untested), vec![Rule::C1]);

        let tested = format!(
            "{untested}#[cfg(test)]\nmod tests {{\n  #[test]\n  fn t() {{ assert!(super::FooStats {{ a: 0 }}.ledger_closes()); }}\n}}\n"
        );
        assert_eq!(rules_hit("dta-reporter", &tested), vec![]);
    }

    #[test]
    fn c1_reference_from_integration_test_file() {
        let lib = file(
            "dta-reporter",
            "pub struct BarStats;\nimpl BarStats { pub fn closes(&self) -> bool { true } }\n",
        );
        let t = SourceFile {
            path: "crates/dta-sim/tests/suite.rs".into(),
            crate_dir: "dta-sim".into(),
            kind: FileKind::TestOnly,
            src: "fn t() { assert!(stats.closes()); }".into(),
        };
        assert_eq!(analyze(&[lib.clone(), t]).len(), 0);
        assert_eq!(analyze(&[lib]).len(), 1);
    }

    #[test]
    fn c1_ignores_non_stats_impls() {
        let src = "pub struct Door;\nimpl Door { pub fn closes(&self) -> bool { true } }\n";
        assert_eq!(rules_hit("dta-core", src), vec![]);
    }
}

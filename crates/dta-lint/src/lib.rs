//! `dta-lint` — workspace-local determinism & invariant static analysis.
//!
//! Every guarantee this reproduction makes — bit-identical collector
//! memory across translator modes, ledger-closure identities, seeded
//! reproducibility of `ScenarioReport` — used to be enforced only at
//! runtime, by release suites that need hundreds of proptest cases to
//! trip a nondeterminism bug. This crate moves the *classes* of bug those
//! suites exist to catch up to analysis time: a hand-rolled
//! lexical/structural scan of every `crates/*/src/**/*.rs` file that
//! bans the constructs which make runs irreproducible before they ever
//! reach a seed.
//!
//! The rule catalogue ([`rules::Rule`]) and the `lint.toml` allowlist
//! policy ([`config`]) are documented in DESIGN.md, "Static analysis".
//! Run it locally with `cargo run -p dta-lint -- --check` (CI runs the
//! same command in the `tier1` job and uploads `LINT_report.json`).
//!
//! No crates.io dependencies: the lexer, TOML-subset config parser, and
//! JSON report writer are all local, following the `dta-sim::corpus` and
//! `crates/bench/src/perf.rs` precedents.

pub mod config;
pub mod lex;
pub mod report;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use config::{parse_allowlist, AllowEntry, ConfigError};
use report::{Finding, Outcome};
use rules::{analyze, Diagnostic, FileKind, Rule, SourceFile};

/// What to run: which rules, against which tree, under which allowlist.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Workspace root (the directory holding `crates/`).
    pub root: PathBuf,
    /// Allowlist path; `None` runs with an empty allowlist.
    pub allow_path: Option<PathBuf>,
    /// Rules to run (normally [`Rule::ALL`]).
    pub enabled: Vec<Rule>,
}

/// A run-level failure (I/O or config) — distinct from rule diagnostics.
#[derive(Debug)]
pub enum RunError {
    Io(String),
    Config(ConfigError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Io(m) => write!(f, "{m}"),
            RunError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Discover, analyze, and resolve against the allowlist.
pub fn run(opts: &RunOptions) -> Result<Outcome, RunError> {
    let crates_dir = opts.root.join("crates");
    if !crates_dir.is_dir() {
        return Err(RunError::Io(format!(
            "{} has no crates/ directory — pass the workspace root with --root",
            opts.root.display()
        )));
    }
    let files = discover(&opts.root, &crates_dir)?;
    let files_scanned = files.iter().filter(|f| f.kind == FileKind::Analyzed).count();

    let allows = match &opts.allow_path {
        Some(p) if p.exists() => {
            let src = fs::read_to_string(p)
                .map_err(|e| RunError::Io(format!("{}: {e}", p.display())))?;
            parse_allowlist(&p.display().to_string(), &src).map_err(RunError::Config)?
        }
        _ => Vec::new(),
    };

    Ok(resolve(analyze(&files), &allows, &opts.enabled, files_scanned))
}

/// Allowlist resolution, separated from I/O so tests can drive it with
/// in-memory diagnostics.
pub fn resolve(
    diags: Vec<Diagnostic>,
    allows: &[AllowEntry],
    enabled: &[Rule],
    files_scanned: usize,
) -> Outcome {
    let mut matched = vec![false; allows.len()];
    let findings: Vec<Finding> = diags
        .into_iter()
        .filter(|d| enabled.contains(&d.rule))
        .map(|diag| {
            let mut reason = None;
            for (i, a) in allows.iter().enumerate() {
                if a.matches(&diag) {
                    matched[i] = true;
                    if reason.is_none() {
                        reason = Some(a.reason.clone());
                    }
                    // keep scanning: every matching entry counts as used
                }
            }
            Finding { diag, allowed_reason: reason }
        })
        .collect();
    // An entry for a rule that did not run cannot prove it still matches;
    // skip its staleness check rather than failing a partial run.
    let stale: Vec<AllowEntry> = allows
        .iter()
        .zip(&matched)
        .filter(|(a, m)| !**m && enabled.contains(&a.rule))
        .map(|(a, _)| a.clone())
        .collect();
    Outcome {
        enabled: enabled.to_vec(),
        files_scanned,
        findings,
        stale,
        allow_entries: allows.len(),
    }
}

/// Collect every `crates/*/src/**/*.rs` (analyzed) and
/// `crates/*/tests/**/*.rs` (C1 reference corpus) file, in sorted order.
/// `tests/fixtures/` subtrees are excluded: lint fixtures deliberately
/// violate the rules and must be invisible to the real run.
fn discover(root: &Path, crates_dir: &Path) -> Result<Vec<SourceFile>, RunError> {
    let mut files = Vec::new();
    for crate_dir in sorted_dirs(crates_dir)? {
        let name = crate_dir.file_name().unwrap_or_default().to_string_lossy().to_string();
        for (sub, kind) in [("src", FileKind::Analyzed), ("tests", FileKind::TestOnly)] {
            let base = crate_dir.join(sub);
            if !base.is_dir() {
                continue;
            }
            let mut paths = Vec::new();
            walk_rs(&base, &mut paths)?;
            paths.sort();
            for p in paths {
                let src = fs::read_to_string(&p)
                    .map_err(|e| RunError::Io(format!("{}: {e}", p.display())))?;
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                files.push(SourceFile { path: rel, crate_dir: name.clone(), kind, src });
            }
        }
    }
    Ok(files)
}

fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, RunError> {
    let rd = fs::read_dir(dir).map_err(|e| RunError::Io(format!("{}: {e}", dir.display())))?;
    let mut out: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    out.sort();
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), RunError> {
    let rd = fs::read_dir(dir).map_err(|e| RunError::Io(format!("{}: {e}", dir.display())))?;
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

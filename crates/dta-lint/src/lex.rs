//! A minimal Rust lexer: just enough structure for the lint rules.
//!
//! The rules only ever reason about *identifier and punctuation tokens
//! outside comments and literals*, plus the comment text itself (for the
//! `// SAFETY:` rule). So the lexer does not classify keywords, parse
//! numbers, or build a syntax tree — it produces a flat token stream with
//! line numbers, and a per-line comment map. Brace-level structure
//! (`#[cfg(test)]` regions, `impl` blocks) is recovered from the token
//! stream by [`crate::rules`].
//!
//! Handled correctly because getting them wrong produces false positives
//! in exactly the files this tool exists to police:
//!
//! * nested block comments (`/* /* */ */` — legal Rust),
//! * cooked strings with escapes, byte strings, raw strings `r#"…"#` of
//!   any hash depth (the corpus renderer and JSON writers are full of
//!   quoted banned tokens),
//! * char literals vs. lifetimes (`'a'` vs. `'static` — a naive quote
//!   matcher would swallow code after `&'static str`).

/// One lexed token: identifiers and single-character punctuation.
///
/// Literals (string/char/number) are consumed but not emitted — no rule
/// matches on them. Multi-character operators arrive as their constituent
/// characters (`::` is `:` `:`), which is fine for sequence matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text: an identifier, or a one-character punctuation string.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl Token {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.text == s && self.text.chars().next().is_some_and(is_ident_start)
    }
}

/// A comment's text and position, kept for the `// SAFETY:` rule.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Full text including the `//` / `/*` introducer.
    pub text: String,
}

/// Lexer output: code tokens plus the comments that were skipped over.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lex `src` into tokens + comments. Never fails: unterminated literals
/// or comments simply consume to end-of-file (the compiler, not the
/// linter, is the arbiter of well-formedness).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                out.comments
                    .push(Comment { line, text: b[start..i].iter().collect() });
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    text: b[start..i.min(b.len())].iter().collect(),
                });
            }
            '"' => i = skip_cooked_string(&b, i, &mut line),
            '\'' => {
                // Char literal or lifetime. A char literal closes with a
                // quote after one (possibly escaped) character; a lifetime
                // is `'ident` with no closing quote.
                if b.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: '\n', '\u{…}', '\\', …
                    i += 2;
                    while i < b.len() && b[i] != '\'' {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                } else if b.get(i + 2) == Some(&'\'')
                    && b.get(i + 1).is_some_and(|c| *c != '\'')
                {
                    i += 3; // 'x'
                } else {
                    // Lifetime: skip the quote and the identifier.
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                // Raw / byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`,
                // `br#"…"#`. The prefix lexes as an identifier that ends
                // immediately before the quote (or hash run).
                if matches!(text.as_str(), "r" | "b" | "br" | "rb") {
                    let mut j = i;
                    let mut hashes = 0usize;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        if hashes == 0 && !text.contains('r') {
                            // b"…": cooked escapes apply.
                            i = skip_cooked_string(&b, j, &mut line);
                        } else {
                            i = skip_raw_string(&b, j, hashes, &mut line);
                        }
                        continue;
                    }
                }
                out.tokens.push(Token { text, line });
            }
            _ if c.is_ascii_digit() => {
                // Numbers (including 0x…, 1_000u64, 1.5e-3): consume the
                // alphanumeric run plus embedded `.` so the float dot is
                // not emitted as punctuation (it is not a method call).
                while i < b.len()
                    && (is_ident_continue(b[i])
                        || b[i] == '.' && b.get(i + 1).is_none_or(|n| n.is_ascii_digit()))
                {
                    i += 1;
                }
            }
            _ if c.is_whitespace() => i += 1,
            _ => {
                out.tokens.push(Token { text: c.to_string(), line });
                i += 1;
            }
        }
    }
    out
}

/// Skip a `"…"` string starting at the opening quote; returns the index
/// past the closing quote.
fn skip_cooked_string(b: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string whose opening quote is at `i` with `hashes` leading
/// `#`s; returns the index past the closing delimiter.
fn skip_raw_string(b: &[char], mut i: usize, hashes: usize, line: &mut usize) -> usize {
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' && (1..=hashes).all(|k| b.get(i + k) == Some(&'#')) {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.text.chars().next().is_some_and(is_ident_start))
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_skipped() {
        let src = r##"
            // Instant in a comment
            /* HashMap /* nested */ still comment */
            let x = "Instant::now()";
            let y = r#"thread_rng"#;
            let z = b"SystemTime";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|t| t == "Instant" || t == "HashMap"));
        assert!(!ids.iter().any(|t| t == "thread_rng" || t == "SystemTime"));
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let ids = idents("fn f(x: &'static str, y: Instant) {}");
        assert!(ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn char_literals() {
        let ids = idents("let c = 'x'; let n = '\\n'; after('q');");
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"x".to_string()));
    }

    #[test]
    fn line_numbers_track() {
        let lx = lex("a\nb\n\nc");
        let lines: Vec<usize> = lx.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn comments_carry_text_and_line() {
        let lx = lex("x();\n// SAFETY: fine\nunsafe_thing();");
        assert_eq!(lx.comments.len(), 1);
        assert_eq!(lx.comments[0].line, 2);
        assert!(lx.comments[0].text.contains("SAFETY:"));
    }

    #[test]
    fn numeric_float_dot_not_punct() {
        let lx = lex("let x = 1.5e3 + 2.0;");
        assert!(!lx.tokens.iter().any(|t| t.text == "."));
    }
}

//! `lint.toml`: the allowlist, and nothing else.
//!
//! The file is a TOML subset (hand-rolled, `dta-sim::corpus` precedent —
//! the build environment has no crates.io) holding `[[allow]]` entries
//! only. There is deliberately no way to disable a rule from the file:
//! rules are toggled per-invocation with `--skip`/`--only`, so a checked-in
//! config can exempt *specific, justified sites* but never switch a rule
//! off wholesale.
//!
//! Every entry **must** carry a non-empty `reason` — an allowlist line
//! without a written justification is a hard error, not a diagnostic. And
//! every entry must still *match* something: an entry whose (rule, path
//! [, line]) no longer triggers is **stale** and fails `--check`, so the
//! allowlist can only shrink honestly (the PR that fixes a site must also
//! drop its exemption).

use std::fmt;

use crate::rules::{Diagnostic, Rule};

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: Rule,
    /// Repo-relative path, forward slashes, exactly as diagnostics print.
    pub path: String,
    /// When present, the exemption covers only this line; when absent, the
    /// whole file for this rule.
    pub line: Option<usize>,
    /// Why this site is sound despite the rule. Required, non-empty.
    pub reason: String,
    /// Line of the `[[allow]]` header in lint.toml (for error anchoring).
    pub decl_line: usize,
}

impl AllowEntry {
    /// Does this entry cover `d`?
    pub fn matches(&self, d: &Diagnostic) -> bool {
        self.rule == d.rule && self.path == d.file && self.line.is_none_or(|l| l == d.line)
    }
}

/// A config parse/validation failure: `file:line: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Parse `lint.toml` content. Strict: unknown sections/keys, missing
/// fields, bad rule IDs, and empty reasons are all hard errors.
pub fn parse_allowlist(file: &str, src: &str) -> Result<Vec<AllowEntry>, ConfigError> {
    let err = |line: usize, message: String| ConfigError { file: file.to_string(), line, message };

    struct Partial {
        decl_line: usize,
        rule: Option<Rule>,
        path: Option<String>,
        line: Option<usize>,
        reason: Option<String>,
    }

    let mut entries = Vec::new();
    let mut cur: Option<Partial> = None;

    let finish = |cur: &mut Option<Partial>,
                  entries: &mut Vec<AllowEntry>|
     -> Result<(), ConfigError> {
        let Some(p) = cur.take() else { return Ok(()) };
        let rule = p.rule.ok_or_else(|| {
            err(p.decl_line, "[[allow]] entry is missing `rule`".to_string())
        })?;
        let path = p.path.ok_or_else(|| {
            err(p.decl_line, "[[allow]] entry is missing `path`".to_string())
        })?;
        let reason = p.reason.ok_or_else(|| {
            err(
                p.decl_line,
                "[[allow]] entry is missing `reason` — every exemption must \
                 carry a written justification"
                    .to_string(),
            )
        })?;
        entries.push(AllowEntry { rule, path, line: p.line, reason, decl_line: p.decl_line });
        Ok(())
    };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut cur, &mut entries)?;
            cur = Some(Partial {
                decl_line: lineno,
                rule: None,
                path: None,
                line: None,
                reason: None,
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(err(
                lineno,
                format!(
                    "unknown section `{line}`: lint.toml holds only [[allow]] entries \
                     (rules are toggled with --skip/--only, never from the file)"
                ),
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim();
        let value = strip_comment(value).trim().to_string();
        let Some(p) = cur.as_mut() else {
            return Err(err(
                lineno,
                format!("`{key}` outside an [[allow]] entry"),
            ));
        };
        match key {
            "rule" => {
                let id = unquote(&value)
                    .ok_or_else(|| err(lineno, format!("`rule` must be a string, got {value}")))?;
                let rule = Rule::from_id(&id).ok_or_else(|| {
                    err(
                        lineno,
                        format!(
                            "unknown rule `{id}` (known: {})",
                            Rule::ALL.map(|r| r.id()).join(", ")
                        ),
                    )
                })?;
                p.rule = Some(rule);
            }
            "path" => {
                let path = unquote(&value)
                    .ok_or_else(|| err(lineno, format!("`path` must be a string, got {value}")))?;
                p.path = Some(path);
            }
            "line" => {
                let n: usize = value.parse().map_err(|_| {
                    err(lineno, format!("`line` must be a positive integer, got {value}"))
                })?;
                if n == 0 {
                    return Err(err(lineno, "`line` must be >= 1 (lines are 1-based)".into()));
                }
                p.line = Some(n);
            }
            "reason" => {
                let reason = unquote(&value).ok_or_else(|| {
                    err(lineno, format!("`reason` must be a string, got {value}"))
                })?;
                if reason.trim().is_empty() {
                    return Err(err(
                        lineno,
                        "`reason` must not be empty — every exemption must carry a \
                         written justification"
                            .to_string(),
                    ));
                }
                p.reason = Some(reason);
            }
            other => {
                return Err(err(
                    lineno,
                    format!("unknown key `{other}` (known: rule, path, line, reason)"),
                ));
            }
        }
    }
    finish(&mut cur, &mut entries)?;
    Ok(entries)
}

/// Strip a trailing `# comment` that is not inside the quoted value.
fn strip_comment(v: &str) -> &str {
    let mut in_str = false;
    for (i, c) in v.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &v[..i],
            _ => {}
        }
    }
    v
}

/// `"s"` -> `s`; anything unquoted is a type error.
fn unquote(v: &str) -> Option<String> {
    let v = v.trim();
    (v.len() >= 2 && v.starts_with('"') && v.ends_with('"'))
        .then(|| v[1..v.len() - 1].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_entry() {
        let src = "\n# header comment\n[[allow]]\nrule = \"D1\" # trailing\npath = \"crates/x/src/a.rs\"\nline = 73\nreason = \"measures real elapsed time\"\n";
        let e = parse_allowlist("lint.toml", src).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].rule, Rule::D1);
        assert_eq!(e[0].line, Some(73));
        assert_eq!(e[0].reason, "measures real elapsed time");
    }

    #[test]
    fn missing_reason_is_hard_error() {
        let src = "[[allow]]\nrule = \"D1\"\npath = \"crates/x/src/a.rs\"\n";
        let e = parse_allowlist("lint.toml", src).unwrap_err();
        assert!(e.message.contains("reason"), "{e}");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn empty_reason_is_hard_error() {
        let src = "[[allow]]\nrule = \"D1\"\npath = \"p\"\nreason = \"  \"\n";
        assert!(parse_allowlist("lint.toml", src).unwrap_err().message.contains("justification"));
    }

    #[test]
    fn unknown_rule_and_key_are_errors() {
        let bad_rule = "[[allow]]\nrule = \"D9\"\npath = \"p\"\nreason = \"r\"\n";
        assert!(parse_allowlist("t", bad_rule).unwrap_err().message.contains("unknown rule"));
        let bad_key = "[[allow]]\nrule = \"D1\"\nfile = \"p\"\nreason = \"r\"\n";
        assert!(parse_allowlist("t", bad_key).unwrap_err().message.contains("unknown key"));
    }

    #[test]
    fn rule_sections_are_rejected() {
        let src = "[rules]\nD1 = false\n";
        assert!(parse_allowlist("t", src).unwrap_err().message.contains("unknown section"));
    }
}

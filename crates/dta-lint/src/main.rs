//! CLI for the workspace lint. `cargo run -p dta-lint -- --check` is the
//! CI entry point; with no flags it reports without failing.

use std::path::PathBuf;
use std::process::ExitCode;

use dta_lint::rules::Rule;
use dta_lint::{run, RunOptions};

const USAGE: &str = "\
dta-lint: workspace determinism & invariant static analysis

USAGE: dta-lint [OPTIONS]

OPTIONS:
  --check            exit 1 on any unallowed diagnostic or stale allowlist
                     entry (CI mode; default is report-only)
  --root DIR         workspace root (default: .)
  --allow FILE       allowlist (default: <root>/lint.toml if present)
  --no-allow         ignore the allowlist entirely
  --report FILE      machine-readable report (default: <root>/LINT_report.json)
  --no-report        skip writing the report
  --skip RULE        disable one rule (repeatable)
  --only RULE        run only the named rule(s) (repeatable)
  --list-rules       print the rule catalogue and exit
  -h, --help         this text

RULES: D1 (wall-clock), D2 (hash iteration), D3 (static mut/abort/todo),
       D4 (ambient randomness), S1 (SAFETY comments), C1 (untested
       closure identities). Catalogue: DESIGN.md, \"Static analysis\".
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allow: Option<PathBuf> = None;
    let mut no_allow = false;
    let mut report: Option<PathBuf> = None;
    let mut no_report = false;
    let mut check = false;
    let mut skip: Vec<Rule> = Vec::new();
    let mut only: Vec<Rule> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let rule_arg = |args: &mut dyn Iterator<Item = String>, flag: &str| {
            let v = args.next().unwrap_or_default();
            Rule::from_id(&v).ok_or_else(|| {
                format!(
                    "{flag} needs a rule id (one of {}), got `{v}`",
                    Rule::ALL.map(|r| r.id()).join(", ")
                )
            })
        };
        match a.as_str() {
            "--check" => check = true,
            "--root" => root = PathBuf::from(args.next().unwrap_or_default()),
            "--allow" => allow = Some(PathBuf::from(args.next().unwrap_or_default())),
            "--no-allow" => no_allow = true,
            "--report" => report = Some(PathBuf::from(args.next().unwrap_or_default())),
            "--no-report" => no_report = true,
            "--skip" => match rule_arg(&mut args, "--skip") {
                Ok(r) => skip.push(r),
                Err(e) => return usage_error(&e),
            },
            "--only" => match rule_arg(&mut args, "--only") {
                Ok(r) => only.push(r),
                Err(e) => return usage_error(&e),
            },
            "--list-rules" => {
                for r in Rule::ALL {
                    println!("{}  {}", r.id(), r.title());
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let enabled: Vec<Rule> = Rule::ALL
        .into_iter()
        .filter(|r| only.is_empty() || only.contains(r))
        .filter(|r| !skip.contains(r))
        .collect();
    if enabled.is_empty() {
        return usage_error("the --skip/--only combination disables every rule");
    }

    let allow_path = if no_allow {
        None
    } else {
        allow.or_else(|| {
            let p = root.join("lint.toml");
            p.exists().then_some(p)
        })
    };

    let outcome = match run(&RunOptions { root: root.clone(), allow_path, enabled }) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dta-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &outcome.findings {
        match &f.allowed_reason {
            Some(reason) => println!("{}  [allowed: {reason}]", f.diag),
            None => println!("{}", f.diag),
        }
    }
    for e in &outcome.stale {
        println!(
            "lint.toml:{}: stale allowlist entry: {} {} no longer triggers — \
             delete the entry (the allowlist only shrinks)",
            e.decl_line,
            e.rule.id(),
            match e.line {
                Some(l) => format!("{}:{l}", e.path),
                None => e.path.clone(),
            }
        );
    }
    print!("{}", outcome.summary());

    if !no_report {
        let path = report.unwrap_or_else(|| root.join("LINT_report.json"));
        if let Err(e) = std::fs::write(&path, outcome.to_json()) {
            eprintln!("dta-lint: error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("report: {}", path.display());
    }

    let violations = outcome.violations().count();
    if check && (violations > 0 || !outcome.stale.is_empty()) {
        eprintln!(
            "dta-lint: FAILED: {violations} unallowed diagnostic(s), {} stale allowlist entr{}",
            outcome.stale.len(),
            if outcome.stale.len() == 1 { "y" } else { "ies" }
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("dta-lint: error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

//! Criterion benchmarks for the wire-format codecs and the translator's
//! end-to-end per-report translation cost.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dta_core::{DtaReport, TelemetryKey};
use dta_hash::{Crc32, CrcParams, HashFamily};
use dta_rdma::packet::{Reth, RocePacket};

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Elements(1));

    let report = DtaReport::key_write(7, TelemetryKey::from_u64(42), 2, vec![1, 2, 3, 4]);
    g.bench_function("dta_encode", |b| b.iter(|| report.encode().unwrap()));
    let wire = report.encode().unwrap();
    g.bench_function("dta_decode", |b| b.iter(|| DtaReport::decode(wire.clone()).unwrap()));

    let roce = RocePacket::write(
        5,
        0,
        Reth { va: 0x1000, rkey: 7, dma_len: 8 },
        Bytes::from_static(&[0u8; 8]),
    );
    g.bench_function("roce_encode", |b| b.iter(|| roce.encode()));
    let roce_wire = roce.encode();
    g.bench_function("roce_decode", |b| b.iter(|| RocePacket::decode(roce_wire.clone()).unwrap()));
    g.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    let crc = Crc32::new(CrcParams::CASTAGNOLI);
    let key = TelemetryKey::from_u64(1234);
    g.throughput(Throughput::Bytes(16));
    g.bench_function("crc32_16B", |b| b.iter(|| crc.compute(key.as_bytes())));
    let fam = HashFamily::new(4);
    g.bench_function("family4_slots", |b| b.iter(|| fam.slots(key.as_bytes(), 1 << 20)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_codecs, bench_hashing
}
criterion_main!(benches);

//! End-to-end translation cost: DTA report in → RoCE packets executed at
//! the collector NIC, per primitive. This is the software equivalent of the
//! translator's per-packet pipeline traversal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dta_collector::service::{
    CollectorService, ServiceConfig, SERVICE_APPEND, SERVICE_CMS, SERVICE_KW, SERVICE_POSTCARD,
};
use dta_core::{DtaReport, TelemetryKey};
use dta_rdma::cm::CmRequester;
use dta_translator::{Translator, TranslatorConfig};

fn pair(append_batch: usize) -> (CollectorService, Translator) {
    let mut c = CollectorService::new(ServiceConfig::default());
    let mut t = Translator::new(TranslatorConfig { append_batch, ..TranslatorConfig::default() });
    for (service, qpn) in [
        (SERVICE_KW, 1u32),
        (SERVICE_POSTCARD, 2),
        (SERVICE_APPEND, 3),
        (SERVICE_CMS, 4),
    ] {
        let req = CmRequester::new(qpn, 0);
        let reply = c.handle_cm(&req.request(service));
        let (qp, params) = req.complete(&reply).unwrap();
        match service {
            SERVICE_KW => t.connect_key_write(qp, params),
            SERVICE_POSTCARD => t.connect_postcarding(qp, params),
            SERVICE_APPEND => t.connect_append(qp, params),
            SERVICE_CMS => t.connect_key_increment(qp, params),
            _ => unreachable!(),
        }
    }
    (c, t)
}

fn bench_translate_and_execute(c: &mut Criterion) {
    let mut g = c.benchmark_group("translator_e2e");
    g.throughput(Throughput::Elements(1));

    for n in [1u8, 2, 4] {
        let (mut col, mut tr) = pair(16);
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::new("key_write", n), &n, |b, &n| {
            b.iter(|| {
                let r = DtaReport::key_write(0, TelemetryKey::from_u64(i), n, vec![1, 2, 3, 4]);
                i = i.wrapping_add(1);
                for pkt in tr.process(0, &r).packets {
                    col.nic_ingress(&pkt);
                }
            })
        });
    }

    let (mut col, mut tr) = pair(16);
    let mut f = 0u64;
    g.throughput(Throughput::Elements(5));
    g.bench_function("postcarding_5hop_flow", |b| {
        b.iter(|| {
            let key = TelemetryKey::from_u64(f);
            f = f.wrapping_add(1);
            for hop in 0..5u8 {
                let r = DtaReport::postcard(0, key, hop, 5, hop as u32);
                for pkt in tr.process(0, &r).packets {
                    col.nic_ingress(&pkt);
                }
            }
        })
    });

    g.throughput(Throughput::Elements(1));
    for batch in [1usize, 16] {
        let (mut col, mut tr) = pair(batch);
        let mut i = 0u32;
        g.bench_with_input(BenchmarkId::new("append", batch), &batch, |b, _| {
            b.iter(|| {
                let r = DtaReport::append(i, i % 8, i.to_be_bytes().to_vec());
                i = i.wrapping_add(1);
                for pkt in tr.process(0, &r).packets {
                    col.nic_ingress(&pkt);
                }
            })
        });
    }

    let (mut col, mut tr) = pair(16);
    let mut k = 0u64;
    g.bench_function("key_increment_n2", |b| {
        b.iter(|| {
            let r = DtaReport::key_increment(0, TelemetryKey::from_u64(k % 4096), 2, 1);
            k = k.wrapping_add(1);
            for pkt in tr.process(0, &r).packets {
                col.nic_ingress(&pkt);
            }
        })
    });
    g.finish();
}

/// Sustained throughput through the batch hot path: reports stream through
/// `process_batch` and the NIC's burst RX, per primitive, with redundancy
/// N∈{1,2,4} for the keyed primitives. This is the loop `repro --json`
/// tracks in `BENCH_translator.json`.
fn bench_sustained(c: &mut Criterion) {
    use dta_translator::TranslatorOutput;
    const POOL: u64 = 4096;
    const BATCH: usize = 256;

    let mut g = c.benchmark_group("translator_sustained");

    let run = |g: &mut criterion::BenchmarkGroup<'_>,
               id: BenchmarkId,
               reports: Vec<dta_core::DtaReport>,
               batch: usize| {
        let (mut col, mut tr) = pair(batch);
        let mut out = TranslatorOutput::default();
        let mut responses = Vec::new();
        g.bench_function(id, |b| {
            b.iter(|| {
                for chunk in reports.chunks(BATCH) {
                    tr.process_batch(0, chunk, &mut out);
                    responses.clear();
                    col.nic_ingress_burst(&out.packets, &mut responses);
                }
            })
        });
    };

    g.throughput(Throughput::Elements(POOL));
    for n in [1u8, 2, 4] {
        let reports: Vec<_> = (0..POOL)
            .map(|i| DtaReport::key_write(0, TelemetryKey::from_u64(i), n, vec![1, 2, 3, 4]))
            .collect();
        run(&mut g, BenchmarkId::new("key_write", n), reports, 16);

        let incs: Vec<_> = (0..POOL)
            .map(|i| DtaReport::key_increment(0, TelemetryKey::from_u64(i % 1024), n, 1))
            .collect();
        run(&mut g, BenchmarkId::new("key_increment", n), incs, 16);
    }

    g.throughput(Throughput::Elements(POOL * 5));
    let postcards: Vec<_> = (0..POOL)
        .flat_map(|i| {
            let key = TelemetryKey::from_u64(i);
            (0..5u8).map(move |hop| DtaReport::postcard(0, key, hop, 5, hop as u32 + 1))
        })
        .collect();
    run(&mut g, BenchmarkId::new("postcarding", "5hop"), postcards, 16);

    g.throughput(Throughput::Elements(POOL));
    for batch in [1usize, 16] {
        let appends: Vec<_> = (0..POOL as u32)
            .map(|i| DtaReport::append(i, i % 8, i.to_be_bytes().to_vec()))
            .collect();
        run(&mut g, BenchmarkId::new("append", batch), appends, batch);
    }
    g.finish();
}

/// Shard-count scaling of the multi-threaded pipeline on the key_write N=2
/// workload. Each iteration ingests the whole pool through the sharded
/// dispatcher and barriers on `wait_idle`, so the measured time covers
/// route + enqueue + parallel translate + parallel RDMA execute. Meaningful
/// scaling needs `shards + 1` free cores; on fewer, the curve flattens into
/// queue-handoff overhead (still worth tracking — it is the price of the
/// sharded path).
fn bench_sharded_scaling(c: &mut Criterion) {
    use dta_translator::{ShardedConfig, ShardedTranslator};
    const POOL: u64 = 4096;

    let mut g = c.benchmark_group("translator_sharded");
    g.throughput(Throughput::Elements(POOL));
    for shards in [1usize, 2, 4, 8] {
        let reports: Vec<_> = (0..POOL)
            .map(|i| DtaReport::key_write(0, TelemetryKey::from_u64(i), 2, vec![1, 2, 3, 4]))
            .collect();
        let mut col = CollectorService::new(ServiceConfig::default());
        let mut st = ShardedTranslator::connect(ShardedConfig::with_shards(shards), &mut col);
        g.bench_with_input(BenchmarkId::new("key_write_n2", shards), &shards, |b, _| {
            b.iter(|| {
                st.ingest_batch(0, reports.iter().cloned());
                st.wait_idle();
            })
        });
        st.flush_and_join();
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_translate_and_execute, bench_sustained, bench_sharded_scaling
}
criterion_main!(benches);

//! Criterion benchmarks for the CPU-collector baselines' real ingestion
//! paths (the work behind Figure 2's cycle counts).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dta_baselines::multilog::IntRecord;
use dta_baselines::{AtomicMultiLog, BTrDb, CuckooTable, IntCollector};
use dta_core::FlowTuple;

fn flow(i: u64) -> FlowTuple {
    FlowTuple::tcp((i & 0xFFFF) as u32, (i % 60_000) as u16 + 1, (i >> 16) as u32 | 1, 80)
}

fn bench_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_ingest");
    g.throughput(Throughput::Elements(1));

    let mut ml = AtomicMultiLog::new(4_000_000);
    let mut i = 0u64;
    g.bench_function("multilog", |b| {
        b.iter(|| {
            ml.ingest(&IntRecord { ts_ns: i, flow: flow(i % 5_000), value: i as u32 });
            i = i.wrapping_add(1);
        })
    });

    let mut ck = CuckooTable::new(1 << 14);
    let mut j = 0u64;
    g.bench_function("cuckoo", |b| {
        b.iter(|| {
            ck.insert(flow(j % 20_000), j as u32);
            j = j.wrapping_add(1);
        })
    });

    let mut db = BTrDb::new(1_000_000);
    let mut k = 0u64;
    g.bench_function("btrdb", |b| {
        b.iter(|| {
            db.ingest(k * 100, (k % 97) as u32);
            k = k.wrapping_add(1);
        })
    });

    let mut ic = IntCollector::new(0.5, 1_000_000);
    let mut l = 0u64;
    g.bench_function("intcollector", |b| {
        b.iter(|| {
            ic.ingest(l * 100, flow(l % 5_000), (l % 1_000) as u32);
            l = l.wrapping_add(1);
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_ingest
}
criterion_main!(benches);

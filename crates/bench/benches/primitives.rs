//! Criterion micro-benchmarks for the DTA primitives' hot paths:
//! store insertion/query (Figures 10–13), postcard cache (Figure 14),
//! append batching/polling (Figures 15–16).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dta_collector::layout::{AppendLayout, CmsLayout, KwLayout, PostcardLayout};
use dta_collector::{
    AppendReader, KeyIncrementStore, KeyWriteStore, PostcardStore, QueryPolicy, ValueCodec,
};
use dta_core::TelemetryKey;
use dta_rdma::mr::{MemoryRegion, MrAccess};
use dta_translator::{AppendBatcher, PostcardCache};

fn kw_store(slots: u64, value_bytes: u32) -> KeyWriteStore {
    let layout = KwLayout { base_va: 0, slots, value_bytes };
    let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
    KeyWriteStore::new(layout, region, 4)
}

fn bench_keywrite(c: &mut Criterion) {
    let mut g = c.benchmark_group("keywrite");
    g.throughput(Throughput::Elements(1));
    for n in [1usize, 2, 4] {
        let store = kw_store(1 << 16, 4);
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::new("insert", n), &n, |b, &n| {
            b.iter(|| {
                store.insert_direct(&TelemetryKey::from_u64(i), &[1, 2, 3, 4], n);
                i = i.wrapping_add(1);
            })
        });
        let store = kw_store(1 << 16, 4);
        for k in 0..6_000u64 {
            store.insert_direct(&TelemetryKey::from_u64(k), &[1, 2, 3, 4], n);
        }
        let mut q = 0u64;
        g.bench_with_input(BenchmarkId::new("query", n), &n, |b, &n| {
            b.iter(|| {
                let out = store.query(&TelemetryKey::from_u64(q % 6_000), n, QueryPolicy::Plurality);
                q = q.wrapping_add(1);
                out
            })
        });
    }
    g.finish();
}

fn bench_postcarding(c: &mut Criterion) {
    let mut g = c.benchmark_group("postcarding");
    let layout = PostcardLayout { base_va: 0, chunks: 1 << 14, hops: 5, slot_bits: 32 };
    let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
    let store = PostcardStore::new(layout, region, ValueCodec::switch_ids(1 << 12, 32), 2);
    let path = [1u32, 2, 3, 4, 5];
    let mut i = 0u64;
    g.throughput(Throughput::Elements(5)); // 5 postcards per op
    g.bench_function("insert_chunk_n1", |b| {
        b.iter(|| {
            store.insert_direct(&TelemetryKey::from_u64(i), &path, 1);
            i = i.wrapping_add(1);
        })
    });
    for k in 0..4_000u64 {
        store.insert_direct(&TelemetryKey::from_u64(k), &path, 2);
    }
    let mut q = 0u64;
    g.bench_function("query_n2", |b| {
        b.iter(|| {
            let out = store.query(&TelemetryKey::from_u64(q % 4_000), 2);
            q = q.wrapping_add(1);
            out
        })
    });
    let mut cache = PostcardCache::new(32 * 1024, 5);
    let mut f = 0u64;
    g.bench_function("cache_aggregate_flow", |b| {
        b.iter(|| {
            let key = TelemetryKey::from_u64(f);
            for hop in 0..5u8 {
                cache.insert(&key, hop, 5, hop as u32);
            }
            f = f.wrapping_add(1);
        })
    });
    g.finish();
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("append");
    let layout = AppendLayout { base_va: 0, lists: 16, entries_per_list: 1 << 16, entry_bytes: 4 };
    for batch in [1usize, 4, 16] {
        let mut batcher = AppendBatcher::new(layout, batch);
        let mut i = 0u32;
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("batcher_push", batch), &batch, |b, _| {
            b.iter(|| {
                let out = batcher.push(i % 16, &i.to_be_bytes());
                i = i.wrapping_add(1);
                out
            })
        });
    }
    let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
    let mut reader = AppendReader::new(layout, region);
    g.bench_function("reader_poll", |b| b.iter(|| reader.poll(0)));
    g.finish();
}

fn bench_key_increment(c: &mut Criterion) {
    let layout = CmsLayout { base_va: 0, slots: 1 << 16 };
    let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::ATOMIC);
    let store = KeyIncrementStore::new(layout, region, 4);
    let mut g = c.benchmark_group("key_increment");
    let mut i = 0u64;
    g.bench_function("increment_n2", |b| {
        b.iter(|| {
            store.increment_direct(&TelemetryKey::from_u64(i % 10_000), 1, 2);
            i = i.wrapping_add(1);
        })
    });
    let mut q = 0u64;
    g.bench_function("query_n2", |b| {
        b.iter(|| {
            let out = store.query(&TelemetryKey::from_u64(q % 10_000), 2);
            q = q.wrapping_add(1);
            out
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_keywrite, bench_postcarding, bench_append, bench_key_increment
}
criterion_main!(benches);

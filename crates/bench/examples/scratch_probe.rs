//! Sanity probe: hit rate of the key digest scratch for a sequential
//! 4K-flow working set (the bench stream shape).
fn main() {
    let mut s = dta_hash::KeyScratch::new(16 * 1024, 8);
    for _pass in 0..3 {
        for i in 0..4096u64 {
            let mut k = [0u8; 16];
            k[0] = 6;
            k[1..9].copy_from_slice(&i.to_be_bytes());
            s.digests(&k, 2);
        }
    }
    println!("{:?} hit_rate={:.3}", s.stats, s.hit_rate());
    assert!(s.hit_rate() > 0.6, "scratch ineffective on sequential flows");
}

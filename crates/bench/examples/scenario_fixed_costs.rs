//! Probe: the fixed (per-run, workload-independent) costs of a scenario —
//! collector store allocation, routing build, memory snapshot extraction.
use std::time::Instant;

fn main() {
    let runs = 200;

    let t = Instant::now();
    for _ in 0..runs {
        let svc = dta_collector::CollectorService::new(dta_collector::ServiceConfig::default());
        std::hint::black_box(&svc);
    }
    println!("CollectorService::new: {:.1} us", t.elapsed().as_nanos() as f64 / runs as f64 / 1e3);

    let svc = dta_collector::CollectorService::new(dta_collector::ServiceConfig::default());
    let t = Instant::now();
    for _ in 0..runs {
        let mut memory: Vec<(u32, dta_rdma::mr::SnapshotBuf)> = svc
            .nic
            .memory
            .regions()
            .map(|r| (r.rkey, r.snapshot()))
            .collect();
        memory.sort_by_key(|(rkey, _)| *rkey);
        std::hint::black_box(&memory);
    }
    println!("memory snapshot: {:.1} us", t.elapsed().as_nanos() as f64 / runs as f64 / 1e3);
    let total: usize = svc.nic.memory.regions().map(|r| r.len()).sum();
    println!("total region bytes: {}", total);

    let t = Instant::now();
    for _ in 0..runs {
        let r = dta_rdma::mr::MemoryRegion::new(0, 1 << 20, 1, dta_rdma::mr::MrAccess::WRITE);
        std::hint::black_box(&r);
    }
    println!("MemoryRegion::new(1MB): {:.1} us", t.elapsed().as_nanos() as f64 / runs as f64 / 1e3);

    let t = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(dta_collector::ValueCodec::switch_ids(1 << 12, 32));
    }
    println!("ValueCodec::switch_ids(4096): {:.1} us", t.elapsed().as_nanos() as f64 / runs as f64 / 1e3);

    let t = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(dta_translator::Translator::new(dta_translator::TranslatorConfig::default()));
    }
    println!("Translator::new: {:.1} us", t.elapsed().as_nanos() as f64 / runs as f64 / 1e3);

    let ft = dta_net::FatTree::new(4);
    let t = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(ft.topology.shortest_path_routing());
    }
    println!("k4 routing build: {:.1} us", t.elapsed().as_nanos() as f64 / runs as f64 / 1e3);

    let ft8 = dta_net::FatTree::new(8);
    let t = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(ft8.topology.shortest_path_routing());
    }
    println!("k8 routing build: {:.1} us", t.elapsed().as_nanos() as f64 / runs as f64 / 1e3);
}

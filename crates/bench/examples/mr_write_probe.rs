//! Probe: raw MemoryRegion::write cost (stripe lock + stats accounting).
use dta_rdma::mr::{MemoryRegion, MrAccess};
use std::time::Instant;

fn main() {
    let mr = MemoryRegion::new(0, 1 << 20, 1, MrAccess::WRITE);
    let data = [0xABu8; 8];
    // random-ish offsets within 1MB
    let offs: Vec<u64> = (0..4096u64).map(|i| (i.wrapping_mul(2654435761) % ((1 << 20) - 8)) & !7).collect();
    let start = Instant::now();
    let mut n = 0u64;
    while start.elapsed().as_millis() < 400 {
        for &o in &offs {
            mr.write(o, &data).unwrap();
        }
        n += offs.len() as u64;
    }
    println!("mr.write 8B: {:.1} ns/op", start.elapsed().as_nanos() as f64 / n as f64);
}

//! Probe: where one K=4 smoke scenario run spends its time (workload
//! synthesis vs fabric simulation vs post-run audit), plus the raw event
//! rate of the `dta-net` engine loop.
use std::time::Instant;

fn main() {
    let spec = dta_sim::ScenarioSpec::smoke(dta_sim::TranslatorMode::SingleThreaded);
    // Whole-run baseline: per-run min/median so CPU-steal spikes on shared
    // hosts don't swamp the signal.
    let runs = 40;
    let mut reports = 0;
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let out = dta_sim::run_scenario(&spec);
            let ns = t0.elapsed().as_nanos() as f64;
            reports = out.report.sent.total();
            std::hint::black_box(&out);
            ns
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    dta_sim::scenario::PHASE_NS.with(|ph| {
        let ph = ph.borrow();
        let names = ["generate", "fabric", "svc+translator", "fleet", "engine", "extract", "audit", "snapshot"];
        for (n, v) in names.iter().zip(ph.iter()) {
            println!("  {n}: {:.1} us/run", *v as f64 / runs as f64 / 1e3);
        }
    });
    println!(
        "run_scenario: min {:.1} / med {:.1} us/run, {} reports/run, min {:.1} ns/report",
        samples[0] / 1e3,
        samples[runs / 2] / 1e3,
        reports,
        samples[0] / reports as f64
    );

    // Near-empty run: fixed setup + audit cost, almost no engine work.
    let tiny = dta_sim::ScenarioSpec { ops_per_reporter: 1, ..spec.clone() };
    let t1b = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(dta_sim::run_scenario(&tiny));
    }
    println!("run_scenario(ops=1): {:.1} us/run", t1b.elapsed().as_nanos() as f64 / runs as f64 / 1e3);

    // Workload synthesis alone.
    let t1 = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(dta_sim::generate(&spec));
    }
    println!("generate: {:.1} us/run", t1.elapsed().as_nanos() as f64 / runs as f64 / 1e3);

    // Raw engine: a K=4 fat tree where every host blasts packets at a sink
    // host; no translator, no collector — pure event churn.
    use dta_net::{FatTree, LinkConfig, Network, Packet, SimTime};
    let ft = FatTree::new(4);
    let mut net = Network::new(ft.topology.shortest_path_routing());
    for (a, b) in ft.topology.edges() {
        net.add_duplex_link(a, b, LinkConfig::dc_100g());
    }
    let sink = ft.host(0, 0, 0);
    net.add_node(sink, Box::<dta_net::node::SinkNode>::default());
    let payload = bytes::Bytes::from(vec![0u8; 100]);
    let t2 = Instant::now();
    let mut events = 0u64;
    let mut sent = 0u64;
    for round in 0..2000u32 {
        for pod in 0..4 {
            for e in 0..2 {
                for h in 0..2 {
                    let host = ft.host(pod, e, h);
                    if host == sink {
                        continue;
                    }
                    net.send_from(host, Packet::new(host, sink, payload.clone()));
                    sent += 1;
                }
            }
        }
        if round % 64 == 0 {
            events += net.run_to_idle();
        }
    }
    events += net.run_to_idle();
    let ns = t2.elapsed().as_nanos() as f64;
    println!(
        "raw engine: {} packets, {} events, {:.1} ns/event, {:.1} ns/delivered-packet",
        sent,
        events,
        ns / events as f64,
        ns / net.stats.delivered as f64
    );
    std::hint::black_box(net.now().as_nanos());
    let _ = SimTime::ZERO;
}

//! One-shot capture of scenario goldens (report debug string + FNV-1a of
//! collector memory) used to pin engine-rewrite equivalence tests — paste
//! the output into `dta-sim/tests/engine_golden.rs` after a *deliberate*
//! behaviour change. The fingerprint is `dta_sim::memory_fingerprint`, the
//! same function the test recomputes.
fn main() {
    for (name, spec) in [
        ("k4_single_clean", {
            let mut s = dta_sim::ScenarioSpec::smoke(dta_sim::TranslatorMode::SingleThreaded);
            s.seed = 0xD7A0_0001;
            s
        }),
        ("k4_single_faulted", {
            let mut s = dta_sim::ScenarioSpec::smoke(dta_sim::TranslatorMode::SingleThreaded);
            s.faults = dta_sim::FaultPlan::unreliable_report_path(0.1, 0.1, 0.1);
            s.reporters = 8;
            s.ops_per_reporter = 16;
            s.seed = 0xD7A0_0002;
            s
        }),
        ("k4_sharded_clean", {
            let mut s = dta_sim::ScenarioSpec::smoke(dta_sim::TranslatorMode::Sharded { shards: 4 });
            s.seed = 0xD7A0_0003;
            s
        }),
    ] {
        let out = dta_sim::run_scenario(&spec);
        let mem_hash = dta_sim::memory_fingerprint(&out.memory);
        println!("== {name}");
        println!("report_debug = {:?}", format!("{:?}", out.report));
        println!("memory_fnv = {mem_hash:#018x}");
    }
}

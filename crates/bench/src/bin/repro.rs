//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --all            # every experiment (slow, use --release)
//! repro --exp f7a        # one experiment
//! repro --all --quick    # reduced trial counts
//! repro --list           # experiment inventory
//! ```

use dta_bench::{all_experiments, run_experiment, ExperimentId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let all = args.iter().any(|a| a == "--all");
    let exp = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str());

    if list {
        println!("available experiments:");
        for id in all_experiments() {
            println!("  {}", id.name());
        }
        return;
    }

    let targets: Vec<ExperimentId> = if all {
        all_experiments().to_vec()
    } else if let Some(name) = exp {
        match ExperimentId::parse(name) {
            Some(id) => vec![id],
            None => {
                eprintln!("unknown experiment '{name}' (try --list)");
                std::process::exit(1);
            }
        }
    } else {
        eprintln!("usage: repro [--all | --exp <id>] [--quick] [--list]");
        std::process::exit(1);
    };

    for id in targets {
        let start = std::time::Instant::now();
        for table in run_experiment(id, quick) {
            println!("{}", table.to_markdown());
        }
        eprintln!("[{}] done in {:.2?}\n", id.name(), start.elapsed());
    }
}

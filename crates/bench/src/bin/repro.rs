//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --all            # every experiment (slow, use --release)
//! repro --exp f7a        # one experiment
//! repro --all --quick    # reduced trial counts
//! repro --list           # experiment inventory
//! repro --json           # sustained translator throughput ->
//!                        #   BENCH_translator.json (phase: current)
//! repro --json --label optimized   # record under a custom phase label
//! repro --check --baseline BENCH_translator.json
//!                        # perf-regression gate: re-run the quick suite
//!                        # and fail (exit 1) if any benchmark regressed
//!                        # >25% vs its committed value, after dividing
//!                        # out the host-speed factor (median ratio)
//! ```

use dta_bench::{all_experiments, run_experiment, ExperimentId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let all = args.iter().any(|a| a == "--all");
    let json = args.iter().any(|a| a == "--json");
    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("current");

    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str());

    if args.iter().any(|a| a == "--check") {
        let baseline = args
            .iter()
            .position(|a| a == "--baseline")
            .and_then(|i| args.get(i + 1))
            .map(|s| s.as_str())
            .unwrap_or("BENCH_translator.json");
        let tolerance = args
            .iter()
            .position(|a| a == "--tolerance")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.25);
        let repeat = args
            .iter()
            .position(|a| a == "--repeat")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(3);
        let (outcomes, ok) = dta_bench::perf::check_against_baseline(
            baseline,
            std::time::Duration::from_millis(100),
            only,
            repeat,
            tolerance,
        );
        println!(
            "perf gate vs {baseline} (tolerance {:.0}%, host-normalized):",
            tolerance * 100.0
        );
        for o in &outcomes {
            println!(
                "  {:<12} {:<26} fresh {:>9.1} ns  baseline {:>9.1} ns  normalized x{:.2}",
                if o.regressed { "REGRESSED" } else { "ok" },
                o.name,
                o.fresh_ns,
                o.baseline_ns,
                o.normalized_ratio
            );
        }
        if !ok {
            eprintln!("perf gate FAILED");
            std::process::exit(1);
        }
        println!("perf gate passed ({} benchmarks)", outcomes.len());
        return;
    }

    if json {
        let window = std::time::Duration::from_millis(if quick { 100 } else { 500 });
        let repeat = args
            .iter()
            .position(|a| a == "--repeat")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(if quick { 1 } else { 5 });
        let results = dta_bench::perf::record_phase_filtered(
            "BENCH_translator.json",
            label,
            window,
            only,
            repeat,
        );
        println!("phase '{label}' -> BENCH_translator.json");
        for e in &results {
            println!(
                "  translator_e2e/{:<20} {:>10.1} ns/report  {:>12.3} M reports/s",
                e.name,
                e.ns_per_report,
                e.reports_per_sec / 1e6
            );
        }
        return;
    }
    let exp = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str());

    if list {
        println!("available experiments:");
        for id in all_experiments() {
            println!("  {}", id.name());
        }
        return;
    }

    let targets: Vec<ExperimentId> = if all {
        all_experiments().to_vec()
    } else if let Some(name) = exp {
        match ExperimentId::parse(name) {
            Some(id) => vec![id],
            None => {
                eprintln!("unknown experiment '{name}' (try --list)");
                std::process::exit(1);
            }
        }
    } else {
        eprintln!("usage: repro [--all | --exp <id>] [--quick] [--list]");
        std::process::exit(1);
    };

    for id in targets {
        let start = std::time::Instant::now();
        for table in run_experiment(id, quick) {
            println!("{}", table.to_markdown());
        }
        eprintln!("[{}] done in {:.2?}\n", id.name(), start.elapsed());
    }
}

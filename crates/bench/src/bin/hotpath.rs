//! `hotpath` — component-level breakdown of the key-write report path.
//!
//! Prints ns/op for each layer of the translator→RDMA→collector pipeline so
//! perf regressions can be localized without external profilers.

use std::time::Instant;

use dta_bench::perf::connected_pair;
use dta_core::{DtaReport, TelemetryKey};
use dta_hash::{Crc32, CrcParams, HashFamily, KeyScratch};

fn time(label: &str, per_loop_ops: u64, mut f: impl FnMut()) {
    // Warm up.
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < 200 {
        f();
        iters += 1;
    }
    let ns = start.elapsed().as_nanos() as f64 / (iters * per_loop_ops) as f64;
    println!("{label:<38} {ns:>9.1} ns/op");
}

fn main() {
    const OPS: u64 = 4_096;
    let keys: Vec<TelemetryKey> = (0..OPS).map(TelemetryKey::from_u64).collect();

    let crc = Crc32::new(CrcParams::IEEE);
    time("crc32 slice-by-8 (16B)", OPS, || {
        for k in &keys {
            std::hint::black_box(crc.compute(k.as_bytes()));
        }
    });
    time("crc32 bytewise oracle (16B)", OPS, || {
        for k in &keys {
            std::hint::black_box(crc.compute_bytewise(k.as_bytes()));
        }
    });

    let fam = HashFamily::new(8);
    time("family hash x2 (16B)", OPS, || {
        for k in &keys {
            std::hint::black_box(fam.hash(0, k.as_bytes()));
            std::hint::black_box(fam.hash(1, k.as_bytes()));
        }
    });

    let mut scratch = KeyScratch::new(4096, 8);
    time("scratch digests N=2 (16K keys)", OPS, || {
        for k in &keys {
            std::hint::black_box(scratch.digests(k.as_bytes(), 2));
        }
    });

    let reports: Vec<DtaReport> = keys
        .iter()
        .map(|k| DtaReport::key_write(0, *k, 2, vec![1, 2, 3, 4]))
        .collect();

    let (_, mut tr) = connected_pair(16);
    time("translator.process only (N=2)", OPS, || {
        for r in &reports {
            std::hint::black_box(tr.process(0, r));
        }
    });

    let (_, mut tr2) = connected_pair(16);
    let mut out = dta_translator::TranslatorOutput::default();
    time("translator.process_batch (N=2)", OPS, || {
        tr2.process_batch(0, &reports, &mut out);
        std::hint::black_box(&out);
    });
    println!(
        "  scratch {:?}  pool (recycled, allocated) {:?}",
        tr2.key_scratch_stats(),
        tr2.image_pool_stats()
    );

    // Ingress alone: pre-translate one batch, then replay it with the
    // responder's expected PSN rewound before each pass, so every replay
    // executes the full path (PSN accept + memory write + stats), not the
    // duplicate-drop short-circuit.
    let (mut col, mut tr3) = connected_pair(16);
    let mut pre = dta_translator::TranslatorOutput::default();
    tr3.process_batch(0, &reports, &mut pre);
    let kw_qpn = pre.packets[0].bth.dest_qp;
    let first_psn = pre.packets[0].bth.psn;
    time("collector.nic_ingress only (executed)", 2 * OPS, || {
        col.nic.qp_mut(kw_qpn).expect("kw responder qp").resync(first_psn);
        for pkt in &pre.packets {
            std::hint::black_box(col.nic_ingress(pkt));
        }
    });
    time("collector.nic_ingress only (dup-drop)", 2 * OPS, || {
        // Without the rewind every packet is a PSN duplicate: the
        // validation-only floor.
        for pkt in &pre.packets {
            std::hint::black_box(col.nic_ingress(pkt));
        }
    });

    let (mut col4, mut tr4) = connected_pair(16);
    time("full pipeline process+ingress (N=2)", OPS, || {
        for r in &reports {
            for pkt in tr4.process(0, r).packets {
                col4.nic_ingress(&pkt);
            }
        }
    });
}

//! Corpus sweep runner: expand every `scenarios/*.toml` grid, run the
//! cells, enforce each file's declared invariants, and emit a coverage
//! report.
//!
//! ```text
//! sweep [PATHS...] [--sample N] [--seed S | --seed-from-git]
//!       [--out FILE] [--list]
//! ```
//!
//! * `PATHS` — corpus files and/or directories (default: `scenarios/`).
//! * `--sample N` — cap each file at ~`N` cells, sampled deterministically
//!   from the sweep seed. Sampling keeps cross-mode groups whole (cells
//!   that differ only in the `mode` axis are taken or skipped together),
//!   so the `cross_mode_memory_equal` invariant stays checkable.
//! * `--seed S` / `--seed-from-git` — the sampling seed; `--seed-from-git`
//!   derives it from `git rev-parse HEAD`, so every CI run of a commit
//!   samples the same cells but different commits walk different corners
//!   of the grids.
//! * `--out FILE` — coverage report path (default `SWEEP_coverage.json`).
//! * `--list` — print each file's grid shape and invariants; run nothing.
//!
//! Exit status is non-zero on any invariant violation or unparseable
//! corpus file.

use std::path::PathBuf;
use std::process::exit;

use dta_analysis::sweep::{mc_keywrite_check, FileCoverage, SweepSummary, Violation};
use dta_sim::{load_dir, load_file, memory_fingerprint, run_scenario, Cell, CorpusDoc};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let sample: Option<u64> = opt("--sample").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("sweep: bad --sample value: {v}");
            exit(2);
        })
    });
    let seed: u64 = if flag("--seed-from-git") {
        git_head_seed().unwrap_or_else(|| {
            eprintln!("sweep: --seed-from-git: no git HEAD available, using seed 0");
            0
        })
    } else {
        opt("--seed").map_or(0, |v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("sweep: bad --seed value: {v}");
                exit(2);
            })
        })
    };
    let out_path = opt("--out").unwrap_or_else(|| "SWEEP_coverage.json".to_string());
    let list_only = flag("--list");

    // Positional paths: everything that isn't a flag or a flag's value.
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        match a.as_str() {
            "--sample" | "--seed" | "--out" => skip = true,
            "--seed-from-git" | "--list" => {}
            _ if a.starts_with("--") => {
                eprintln!("sweep: unknown flag {a}");
                exit(2);
            }
            _ => paths.push(PathBuf::from((i, a).1)),
        }
    }
    if paths.is_empty() {
        paths.push(PathBuf::from("scenarios"));
    }

    // Load the corpus; any unreadable or invalid file is fatal.
    let mut docs: Vec<CorpusDoc> = Vec::new();
    for p in &paths {
        let loaded = if p.is_dir() { load_dir(p) } else { load_file(p).map(|d| vec![d]) };
        match loaded {
            Ok(mut d) => docs.append(&mut d),
            Err(e) => {
                eprintln!("sweep: corpus error: {e}");
                exit(1);
            }
        }
    }
    if docs.is_empty() {
        eprintln!("sweep: no corpus files found under {paths:?}");
        exit(1);
    }

    if list_only {
        for doc in &docs {
            let axes: Vec<String> = doc
                .sweep
                .iter()
                .map(|a| format!("{}×{}", a.name(), a.len()))
                .collect();
            println!(
                "{}: {} cells [{}] invariants: {}",
                doc.file,
                doc.cell_count(),
                axes.join(", "),
                doc.invariants.enabled().join(",")
            );
        }
        return;
    }

    let mut summary = SweepSummary { seed, sample, files: Vec::new() };
    for doc in &docs {
        summary.files.push(sweep_file(doc, sample, seed));
    }

    let json = summary.render_json();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("sweep: cannot write {out_path}: {e}");
        exit(1);
    }
    for v in summary.violations() {
        eprintln!(
            "VIOLATION {} [{}] {}: {}",
            v.file, v.cell, v.invariant, v.detail
        );
    }
    println!(
        "sweep: {} files, {} cells run ({} scenario executions), {} invariant checks, {} violations -> {}",
        summary.files.len(),
        summary.cells_run(),
        summary.runs(),
        summary.checks(),
        summary.violations().count(),
        out_path
    );
    if !summary.ok() {
        exit(1);
    }
}

/// Expand, (optionally) sample, run, and check one corpus file.
fn sweep_file(doc: &CorpusDoc, sample: Option<u64>, seed: u64) -> FileCoverage {
    let all = doc.cells();
    let picked = match sample {
        Some(n) => sample_cells(&all, n, seed ^ fnv1a(doc.file.as_bytes())),
        None => all.clone(),
    };
    let inv = &doc.invariants;
    let mut cov = FileCoverage {
        file: doc.file.clone(),
        cells_total: all.len() as u64,
        cells_run: picked.len() as u64,
        runs: 0,
        axes: doc
            .sweep
            .iter()
            .map(|a| (a.name().to_string(), a.len() as u64))
            .collect(),
        invariants: inv.enabled().iter().map(|s| s.to_string()).collect(),
        checks: 0,
        violations: Vec::new(),
    };

    // Per-cell results kept for the cross-mode group comparison.
    let mut mode_groups: Vec<(String, String, u64)> = Vec::new(); // (group, cell, fingerprint)
    for cell in &picked {
        let outcome = run_scenario(&cell.spec);
        cov.runs += 1;
        let r = &outcome.report;
        let fp = memory_fingerprint(&outcome.memory);
        let mut fail = |invariant: &str, detail: String| {
            cov.violations.push(Violation {
                file: doc.file.clone(),
                cell: cell.id(),
                invariant: invariant.to_string(),
                detail,
            });
        };

        if inv.bit_reproducible {
            cov.checks += 1;
            let again = run_scenario(&cell.spec);
            cov.runs += 1;
            let fp2 = memory_fingerprint(&again.memory);
            if again.report != *r || fp2 != fp || again.fleet_memory.len() != outcome.fleet_memory.len()
                || outcome
                    .fleet_memory
                    .iter()
                    .zip(&again.fleet_memory)
                    .any(|(a, b)| memory_fingerprint(a) != memory_fingerprint(b))
            {
                fail(
                    "bit_reproducible",
                    format!("second run diverged (memory {fp:#018x} vs {fp2:#018x})"),
                );
            }
        }
        if inv.no_unsent {
            cov.checks += 1;
            if r.reports_unsent != 0 {
                fail("no_unsent", format!("reports_unsent = {}", r.reports_unsent));
            }
        }
        if inv.no_fabric_drops {
            cov.checks += 1;
            if r.net.dropped != 0 || r.faults.dropped != 0 {
                fail(
                    "no_fabric_drops",
                    format!("net.dropped = {}, faults.dropped = {}", r.net.dropped, r.faults.dropped),
                );
            }
        }
        if inv.ledger_closure {
            cov.checks += 1;
            let reporter = r.reporter.ledger_closes();
            let failover = r.failover.ledger_closes();
            let rebalance = r.rebalance.as_ref().is_none_or(|s| s.closes());
            if !(reporter && failover && rebalance) {
                fail(
                    "ledger_closure",
                    format!(
                        "reporter = {reporter}, failover = {failover}, rebalance = {rebalance}"
                    ),
                );
            }
        }
        if inv.fanout_lookups_zero {
            cov.checks += 1;
            if r.queries.fanout_lookups != 0 {
                fail(
                    "fanout_lookups_zero",
                    format!("fanout_lookups = {}", r.queries.fanout_lookups),
                );
            }
        }
        if inv.kw_audit_clean {
            cov.checks += 1;
            if r.queries.kw_missing != 0 || r.queries.kw_ambiguous != 0 {
                fail(
                    "kw_audit_clean",
                    format!(
                        "kw_missing = {}, kw_ambiguous = {}",
                        r.queries.kw_missing, r.queries.kw_ambiguous
                    ),
                );
            }
        }
        if inv.queries_answered {
            cov.checks += 1;
            match &r.query {
                Some(q) if q.answered > 0 => {}
                Some(q) => fail(
                    "queries_answered",
                    format!("query stream issued {} but answered 0", q.issued),
                ),
                None => fail(
                    "queries_answered",
                    "no [query] plan in spec (invariant needs one)".to_string(),
                ),
            }
        }
        if inv.kw_audit_vs_montecarlo {
            cov.checks += 1;
            let audited = r.queries.kw_found + r.queries.kw_ambiguous + r.queries.kw_missing;
            let spec = &cell.spec;
            let slots = spec.service.kw_bytes / (4 + spec.service.kw_value_bytes as u64);
            let observed = if audited == 0 { 1.0 } else { r.queries.kw_found as f64 / audited as f64 };
            match mc_keywrite_check(slots, spec.traffic.kw_redundancy as u32, audited, observed, spec.seed)
            {
                Some(c) if !c.ok => fail(
                    "kw_audit_vs_montecarlo",
                    format!(
                        "observed {:.4} vs predicted {:.4} (alpha {:.5}, {} keys)",
                        c.observed, c.predicted, c.alpha, audited
                    ),
                ),
                _ => {}
            }
        }
        if inv.cross_mode_memory_equal {
            mode_groups.push((cell.mode_group_id(), cell.id(), fp));
        }
    }

    if inv.cross_mode_memory_equal {
        let mut groups: Vec<(&str, Vec<(&str, u64)>)> = Vec::new();
        for (g, c, fp) in &mode_groups {
            match groups.iter_mut().find(|(name, _)| name == g) {
                Some((_, members)) => members.push((c, *fp)),
                None => groups.push((g, vec![(c, *fp)])),
            }
        }
        for (group, members) in groups {
            cov.checks += 1;
            let (c0, fp0) = members[0];
            for &(c, fp) in &members[1..] {
                if fp != fp0 {
                    cov.violations.push(Violation {
                        file: doc.file.clone(),
                        cell: c.to_string(),
                        invariant: "cross_mode_memory_equal".to_string(),
                        detail: format!(
                            "memory {fp:#018x} != {fp0:#018x} of [{c0}] (group [{group}])"
                        ),
                    });
                }
            }
        }
    }
    cov
}

/// Deterministically sample ~`n` cells, keeping cross-mode groups whole:
/// groups (cells identical but for the `mode` axis) are shuffled by a
/// seeded Fisher–Yates and taken until the cell budget is met. Always
/// takes at least one group.
fn sample_cells(cells: &[Cell], n: u64, seed: u64) -> Vec<Cell> {
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, c) in cells.iter().enumerate() {
        let g = c.mode_group_id();
        match groups.iter_mut().find(|(name, _)| *name == g) {
            Some((_, members)) => members.push(i),
            None => groups.push((g, vec![i])),
        }
    }
    let mut order: Vec<usize> = (0..groups.len()).collect();
    let mut state = seed;
    for i in (1..order.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut out = Vec::new();
    for gi in order {
        if !out.is_empty() && out.len() as u64 >= n {
            break;
        }
        out.extend(groups[gi].1.iter().map(|&i| cells[i].clone()));
    }
    out
}

/// Sampling seed from the checked-out commit: the first 16 hex digits of
/// `git rev-parse HEAD`.
fn git_head_seed() -> Option<u64> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let hex = String::from_utf8(out.stdout).ok()?;
    u64::from_str_radix(hex.trim().get(..16)?, 16).ok()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

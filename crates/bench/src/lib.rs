//! Experiment implementations for the `repro` harness.
//!
//! Each paper table/figure has a function returning one or more
//! [`dta_analysis::Table`]s; the `repro` binary selects and prints them.
//! Experiments that would need the authors' testbed scale (4 GiB stores,
//! 100M-key sweeps) run at a reduced scale with identical dimensionless
//! parameters (load factor α, redundancy N, batch size B) — the quantities
//! the results actually depend on. EXPERIMENTS.md records scale choices and
//! paper-vs-measured numbers.

pub mod exp;
pub mod perf;

pub use exp::{all_experiments, run_experiment, ExperimentId};

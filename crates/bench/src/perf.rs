//! Sustained-throughput measurement of the translator→RDMA→collector hot
//! path, and the `BENCH_translator.json` tracking file.
//!
//! Unlike the criterion micro-benches (statistical, per-call), this module
//! answers the paper's Figure 6/10 question — *how many reports per second
//! does the software pipeline sustain end-to-end?* — with one fixed
//! wall-clock loop per primitive, so numbers are comparable commit-to-
//! commit. `repro --json` appends a labelled phase to
//! `BENCH_translator.json`; committing a `baseline` phase before a perf PR
//! and an `optimized` phase after records the trajectory in-repo.

use std::time::{Duration, Instant};

use dta_collector::service::{
    CollectorService, ServiceConfig, SERVICE_APPEND, SERVICE_CMS, SERVICE_KW, SERVICE_POSTCARD,
};
use dta_core::{DtaReport, TelemetryKey};
use dta_rdma::cm::CmRequester;
use dta_translator::{
    ShardedConfig, ShardedTranslator, Translator, TranslatorConfig, TranslatorOutput,
};

/// One measured pipeline configuration.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Benchmark name (`key_write/2`, `append/16`, ...).
    pub name: String,
    /// Mean nanoseconds per report.
    pub ns_per_report: f64,
    /// Sustained reports per second.
    pub reports_per_sec: f64,
    /// Reports executed during the measurement window.
    pub reports: u64,
}

/// Build a collector + fully connected translator pair (the same wiring the
/// criterion benches use).
pub fn connected_pair(append_batch: usize) -> (CollectorService, Translator) {
    let mut c = CollectorService::new(ServiceConfig::default());
    let mut t = Translator::new(TranslatorConfig { append_batch, ..TranslatorConfig::default() });
    for (service, qpn) in [
        (SERVICE_KW, 1u32),
        (SERVICE_POSTCARD, 2),
        (SERVICE_APPEND, 3),
        (SERVICE_CMS, 4),
    ] {
        let req = CmRequester::new(qpn, 0);
        let reply = c.handle_cm(&req.request(service));
        let (qp, params) = req.complete(&reply).unwrap();
        match service {
            SERVICE_KW => t.connect_key_write(qp, params),
            SERVICE_POSTCARD => t.connect_postcarding(qp, params),
            SERVICE_APPEND => t.connect_append(qp, params),
            SERVICE_CMS => t.connect_key_increment(qp, params),
            _ => unreachable!(),
        }
    }
    (c, t)
}

/// Distinct keys cycled by the report stream — the active flow working set
/// (the same quantity the paper's Figure 14 parameterizes its translator
/// cache against). 4K active flows is rack-scale; the pool also stays
/// cache-resident so the measurement exercises the pipeline, not DRAM.
const KEY_POOL: u64 = 4 * 1024;

/// Reports per [`Translator::process_batch`] call in the sustained loop —
/// the steady-state batch a translator would pull off its ingress queue.
const BATCH: usize = 256;

/// Sustained loop over the report pool: translate through the batch entry
/// point (the hot path), execute every packet at the collector NIC.
fn run_loop(
    name: &str,
    window: Duration,
    reports: &[DtaReport],
    col: &mut CollectorService,
    tr: &mut Translator,
) -> PerfEntry {
    let mut out = TranslatorOutput::default();
    let mut responses = Vec::new();
    let pass = |out: &mut TranslatorOutput,
                responses: &mut Vec<_>,
                col: &mut CollectorService,
                tr: &mut Translator| {
        for chunk in reports.chunks(BATCH) {
            tr.process_batch(0, chunk, out);
            responses.clear();
            col.nic_ingress_burst(&out.packets, responses);
        }
    };
    // Warm-up: one pass over the pool.
    pass(&mut out, &mut responses, col, tr);
    let mut done = 0u64;
    let start = Instant::now();
    loop {
        pass(&mut out, &mut responses, col, tr);
        done += reports.len() as u64;
        if start.elapsed() >= window {
            break;
        }
    }
    std::hint::black_box(&out);
    finish_entry(name, start.elapsed(), done)
}

/// Sustained loop through the per-report [`Translator::process`] API —
/// kept measured (as `*_single` entries) so the unbatched path's
/// trajectory is tracked alongside the batch path.
fn run_loop_single(
    name: &str,
    window: Duration,
    reports: &[DtaReport],
    col: &mut CollectorService,
    tr: &mut Translator,
) -> PerfEntry {
    for r in reports {
        for pkt in tr.process(0, r).packets {
            col.nic_ingress(&pkt);
        }
    }
    let mut done = 0u64;
    let start = Instant::now();
    loop {
        for r in reports {
            for pkt in tr.process(0, r).packets {
                col.nic_ingress(&pkt);
            }
        }
        done += reports.len() as u64;
        if start.elapsed() >= window {
            break;
        }
    }
    finish_entry(name, start.elapsed(), done)
}

/// Shard counts measured by the `key_write_sharded/*` scaling entries.
pub const SHARD_POINTS: [usize; 4] = [1, 2, 4, 8];

/// Sustained loop through the sharded pipeline: the ingest side routes and
/// enqueues (cloning `Bytes`-backed reports is a refcount bump, the real
/// dispatch cost), shard workers translate and execute concurrently, and
/// the window closes on a `wait_idle` barrier so every counted report has
/// actually landed in collector memory.
///
/// NOTE: scaling beyond 1 requires as many free cores as shards (+1 for
/// ingest); on core-starved hosts these entries measure queue/scheduling
/// overhead, not parallel speedup — compare against the host's
/// `key_write/2` from the same phase, not across machines.
fn run_loop_sharded(
    name: &str,
    window: Duration,
    shards: usize,
    reports: &[DtaReport],
    col: &mut CollectorService,
) -> PerfEntry {
    let mut st = ShardedTranslator::connect(ShardedConfig::with_shards(shards), col);
    // Warm-up: one pass over the pool.
    st.ingest_batch(0, reports.iter().cloned());
    st.wait_idle();
    let mut done = 0u64;
    let start = Instant::now();
    loop {
        st.ingest_batch(0, reports.iter().cloned());
        done += reports.len() as u64;
        if start.elapsed() >= window {
            break;
        }
    }
    // Everything ingested must finish inside the measured interval.
    st.wait_idle();
    let elapsed = start.elapsed();
    st.flush_and_join();
    finish_entry(name, elapsed, done)
}

/// Sustained loop over complete scenario runs: each iteration assembles a
/// K=4 fat tree with a paced reporter fleet, drives it to quiescence on
/// the simulated clock, and audits the collector — so the ns/report here
/// prices the *whole* deployment path (framing, fabric hops, translation,
/// RDMA execution, query audit), not just the translator hot loop. The
/// scenario is seeded and any fault schedule is deterministic, so every
/// run does identical work.
fn run_loop_scenario(name: &str, window: Duration, spec: &dta_sim::ScenarioSpec) -> PerfEntry {
    let per_run = {
        // Warm-up run; also fixes the per-run report count.
        let outcome = dta_sim::run_scenario(spec);
        assert_eq!(outcome.report.reports_unsent, 0, "bench spec must drain");
        outcome.report.sent.total()
    };
    let mut done = 0u64;
    let start = Instant::now();
    loop {
        let outcome = dta_sim::run_scenario(spec);
        std::hint::black_box(&outcome);
        done += per_run;
        if start.elapsed() >= window {
            break;
        }
    }
    finish_entry(name, start.elapsed(), done)
}

fn finish_entry(name: &str, elapsed: Duration, done: u64) -> PerfEntry {
    let ns = elapsed.as_nanos() as f64 / done as f64;
    PerfEntry {
        name: name.to_string(),
        ns_per_report: ns,
        reports_per_sec: 1e9 / ns,
        reports: done,
    }
}

/// Measure the full translator suite: Key-Write at N∈{1,2,4}, Postcarding,
/// Append at B∈{1,16}, Key-Increment at N=2.
pub fn translator_suite(window: Duration) -> Vec<PerfEntry> {
    translator_suite_filtered(window, None)
}

/// [`translator_suite`] restricted to one benchmark (exact name, e.g.
/// `key_write/2`) or one family (name prefix up to a `/`, e.g. `key_write`
/// or `key_write_sharded`); all benchmarks when `None`. The anchored match
/// keeps quick paired A/B selections stable as suffixed benchmark families
/// are added (`--only key_write` must not start spinning up the sharded
/// thread pools).
pub fn translator_suite_filtered(window: Duration, only: Option<&str>) -> Vec<PerfEntry> {
    let mut results = Vec::new();
    let wants = |name: &str| {
        only.is_none_or(|f| {
            name == f || (name.starts_with(f) && name[f.len()..].starts_with('/'))
        })
    };

    for n in [1u8, 2, 4] {
        let reports = || -> Vec<DtaReport> {
            (0..KEY_POOL)
                .map(|i| DtaReport::key_write(0, TelemetryKey::from_u64(i), n, vec![1, 2, 3, 4]))
                .collect()
        };
        if wants(&format!("key_write/{n}")) {
            let (mut col, mut tr) = connected_pair(16);
            results.push(run_loop(
                &format!("key_write/{n}"),
                window,
                &reports(),
                &mut col,
                &mut tr,
            ));
        }
        if wants(&format!("key_write_single/{n}")) {
            let (mut col, mut tr) = connected_pair(16);
            results.push(run_loop_single(
                &format!("key_write_single/{n}"),
                window,
                &reports(),
                &mut col,
                &mut tr,
            ));
        }
    }

    if wants("postcarding/5hop") {
        let (mut col, mut tr) = connected_pair(16);
        let reports: Vec<DtaReport> = (0..KEY_POOL)
            .flat_map(|i| {
                let key = TelemetryKey::from_u64(i);
                (0..5u8).map(move |hop| DtaReport::postcard(0, key, hop, 5, hop as u32 + 1))
            })
            .collect();
        results.push(run_loop("postcarding/5hop", window, &reports, &mut col, &mut tr));
    }

    for batch in [1usize, 16] {
        if !wants(&format!("append/{batch}")) {
            continue;
        }
        let (mut col, mut tr) = connected_pair(batch);
        let reports: Vec<DtaReport> = (0..KEY_POOL as u32)
            .map(|i| DtaReport::append(i, i % 8, i.to_be_bytes().to_vec()))
            .collect();
        results.push(run_loop(&format!("append/{batch}"), window, &reports, &mut col, &mut tr));
    }

    if wants("key_increment/2") {
        let (mut col, mut tr) = connected_pair(16);
        let reports: Vec<DtaReport> = (0..KEY_POOL)
            .map(|i| DtaReport::key_increment(0, TelemetryKey::from_u64(i % 4096), 2, 1))
            .collect();
        results.push(run_loop("key_increment/2", window, &reports, &mut col, &mut tr));
    }

    // Sharded scaling: `key_write_sharded/S` is the key_write/2 workload
    // through the multi-threaded pipeline at S shards.
    for shards in SHARD_POINTS {
        if !wants(&format!("key_write_sharded/{shards}")) {
            continue;
        }
        let mut col = CollectorService::new(ServiceConfig::default());
        let reports: Vec<DtaReport> = (0..KEY_POOL)
            .map(|i| DtaReport::key_write(0, TelemetryKey::from_u64(i), 2, vec![1, 2, 3, 4]))
            .collect();
        results.push(run_loop_sharded(
            &format!("key_write_sharded/{shards}"),
            window,
            shards,
            &reports,
            &mut col,
        ));
    }

    // End-to-end scenarios: the K=4 fat-tree smoke deployment through both
    // translator modes (see dta-sim). Tracks the full reporter→fabric→
    // translator→collector path commit-to-commit.
    if wants("scenario/k4_single") {
        let spec = dta_sim::ScenarioSpec::smoke(dta_sim::TranslatorMode::SingleThreaded);
        results.push(run_loop_scenario("scenario/k4_single", window, &spec));
    }
    if wants("scenario/k4_sharded4") {
        let spec = dta_sim::ScenarioSpec::smoke(dta_sim::TranslatorMode::Sharded { shards: 4 });
        results.push(run_loop_scenario("scenario/k4_sharded4", window, &spec));
    }

    // Congestion loop: the K=4 deployment under a translator rate limit
    // that drops ~a third of the offered load, with NACK-driven reporter
    // retransmission closing the loop (see ScenarioSpec::congested). The
    // ns/report prices the whole recovery cycle — drop, NACK hop back
    // across the fabric, paced retransmit, re-translation — on top of the
    // normal path; in sharded mode it additionally covers the per-tick
    // queue barrier the deterministic NACK drain requires.
    if wants("scenario_congested/k4_congested_single") {
        let spec = dta_sim::ScenarioSpec::congested(dta_sim::TranslatorMode::SingleThreaded);
        results.push(run_loop_scenario("scenario_congested/k4_congested_single", window, &spec));
    }
    if wants("scenario_congested/k4_congested_sharded4") {
        let spec =
            dta_sim::ScenarioSpec::congested(dta_sim::TranslatorMode::Sharded { shards: 4 });
        results.push(run_loop_scenario(
            "scenario_congested/k4_congested_sharded4",
            window,
            &spec,
        ));
    }

    // Failover: the K=4 deployment with a fleet of 3 collectors and
    // collector 1 killed mid-run (see ScenarioSpec::failover). The
    // ns/report prices the whole robustness cycle on top of the normal
    // path — fail-stop detection, routing-table epoch bump, ledger
    // replay through the survivors, and the fleet-wide query fan-out.
    if wants("scenario_failover/k4_failover_single") {
        let spec = dta_sim::ScenarioSpec::failover(dta_sim::TranslatorMode::SingleThreaded);
        results.push(run_loop_scenario("scenario_failover/k4_failover_single", window, &spec));
    }
    if wants("scenario_failover/k4_failover_sharded4") {
        let spec = dta_sim::ScenarioSpec::failover(dta_sim::TranslatorMode::Sharded { shards: 4 });
        results.push(run_loop_scenario(
            "scenario_failover/k4_failover_sharded4",
            window,
            &spec,
        ));
    }

    // Rebalance: the failover deployment with collector 1 rejoining and a
    // RebalancePlan migrating its stranded key range home mid-traffic (see
    // ScenarioSpec::rebalance). On top of the failover cycle, the
    // ns/report prices the epoch-fenced handoff — fence recording and
    // double-writes/deferrals on the live path, the per-key drain
    // (migration-QP reads, KW replays, per-slot INC delta fetch-adds,
    // fallback zeroing), and the release scan.
    if wants("scenario_rebalance/k4_rebalance_single") {
        let spec = dta_sim::ScenarioSpec::rebalance(dta_sim::TranslatorMode::SingleThreaded);
        results.push(run_loop_scenario("scenario_rebalance/k4_rebalance_single", window, &spec));
    }
    if wants("scenario_rebalance/k4_rebalance_sharded4") {
        let spec = dta_sim::ScenarioSpec::rebalance(dta_sim::TranslatorMode::Sharded { shards: 4 });
        results.push(run_loop_scenario(
            "scenario_rebalance/k4_rebalance_sharded4",
            window,
            &spec,
        ));
    }

    // Query serving under write load: the smoke deployment with a 16
    // queries/epoch snapshot-read stream spanning the emission window (see
    // ScenarioSpec::query_under_load). On top of the normal path, the
    // ns/report prices the per-epoch snapshot captures, the sharded-mode
    // quiesce barriers at every epoch boundary, and the plurality/poll/
    // CMS/cache reads the stream performs against the images.
    if wants("scenario_query/k4_single") {
        let spec = dta_sim::ScenarioSpec::query_under_load(dta_sim::TranslatorMode::SingleThreaded);
        results.push(run_loop_scenario("scenario_query/k4_single", window, &spec));
    }
    if wants("scenario_query/k4_sharded4") {
        let spec =
            dta_sim::ScenarioSpec::query_under_load(dta_sim::TranslatorMode::Sharded { shards: 4 });
        results.push(run_loop_scenario("scenario_query/k4_sharded4", window, &spec));
    }

    // Datacenter scale: K=8 fat tree, 1008 paced reporters (8 lanes per
    // host). One run is ~13k reports over 80 switches — the workload the
    // PR 4 engine rewrite (dense arenas + timing wheel) exists for.
    if wants("scenario_large/k8_single") {
        let spec = dta_sim::ScenarioSpec::large(dta_sim::TranslatorMode::SingleThreaded);
        results.push(run_loop_scenario("scenario_large/k8_single", window, &spec));
    }
    if wants("scenario_large/k8_sharded4") {
        let spec = dta_sim::ScenarioSpec::large(dta_sim::TranslatorMode::Sharded { shards: 4 });
        results.push(run_loop_scenario("scenario_large/k8_sharded4", window, &spec));
    }

    results
}

/// One benchmark's verdict from [`check_against_baseline`].
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Benchmark name.
    pub name: String,
    /// Freshly measured ns/report.
    pub fresh_ns: f64,
    /// Committed baseline ns/report (from the most recent phase containing
    /// the benchmark).
    pub baseline_ns: f64,
    /// `fresh / baseline`, normalized by the run's median ratio so a
    /// uniformly slower/faster host does not flag every benchmark.
    pub normalized_ratio: f64,
    /// Whether the normalized ratio exceeds the tolerance.
    pub regressed: bool,
}

/// The CI perf-regression gate: re-measure the suite (optionally filtered
/// by `only`) with quick windows and compare each benchmark against the
/// most recent committed phase in `baseline_path` that contains it.
///
/// Raw cross-host ratios are useless (CI runners are not the recording
/// host), so each benchmark's fresh/baseline ratio is divided by the
/// **median ratio across all benchmarks** — the host-speed factor — and a
/// benchmark fails only if it regressed more than `tolerance` (e.g. 0.25)
/// *relative to the rest of the suite*. A change that slows one phase 25%
/// while the others hold still trips the gate on any host.
///
/// Returns `(outcomes, ok)`; `ok` is false if anything regressed (or the
/// baseline file was unreadable/empty).
pub fn check_against_baseline(
    baseline_path: &str,
    window: Duration,
    only: Option<&str>,
    repeat: usize,
    tolerance: f64,
) -> (Vec<CheckOutcome>, bool) {
    let Ok(text) = std::fs::read_to_string(baseline_path) else {
        eprintln!("perf gate: cannot read baseline {baseline_path}");
        return (Vec::new(), false);
    };
    let phases = parse_phases(&text);
    // Most recent committed value per benchmark = last phase wins.
    let baseline_of = |name: &str| -> Option<f64> {
        phases
            .iter()
            .rev()
            .find_map(|(_, entries)| entries.iter().find(|e| e.name == name))
            .map(|e| e.ns_per_report)
            .filter(|ns| *ns > 0.0)
    };

    let repeat = repeat.max(1);
    let mut runs: Vec<Vec<PerfEntry>> =
        (0..repeat).map(|_| translator_suite_filtered(window, only)).collect();
    let fresh: Vec<PerfEntry> = (0..runs[0].len())
        .map(|i| {
            let mut samples: Vec<PerfEntry> = runs.iter_mut().map(|r| r[i].clone()).collect();
            samples.sort_by(|a, b| a.ns_per_report.total_cmp(&b.ns_per_report));
            samples.swap_remove(samples.len() / 2)
        })
        .collect();

    let mut ratios: Vec<(usize, f64, f64)> = Vec::new(); // (fresh idx, baseline, ratio)
    for (i, e) in fresh.iter().enumerate() {
        if let Some(base) = baseline_of(&e.name) {
            ratios.push((i, base, e.ns_per_report / base));
        }
    }
    // One benchmark cannot be separated from the host-speed factor at all
    // (its normalized ratio is identically 1); refuse rather than pass
    // vacuously.
    if ratios.len() < 2 {
        eprintln!(
            "perf gate: need at least two benchmarks overlapping the baseline to \
             separate host speed from regressions (got {}) — widen --only",
            ratios.len()
        );
        return (Vec::new(), false);
    }

    // Host-speed factor per benchmark: the *leave-one-out* median of the
    // others' ratios. A plain shared median would let the median
    // benchmark itself — and, with two benchmarks, any regression —
    // normalize to exactly 1.0 and sail through.
    let loo_median = |skip: usize| -> f64 {
        let mut others: Vec<f64> = ratios
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != skip)
            .map(|(_, &(_, _, r))| r)
            .collect();
        others.sort_by(f64::total_cmp);
        others[others.len() / 2]
    };

    let mut ok = true;
    let outcomes = (0..ratios.len())
        .map(|k| {
            let (i, baseline_ns, ratio) = ratios[k];
            let normalized = ratio / loo_median(k);
            let regressed = normalized > 1.0 + tolerance;
            ok &= !regressed;
            CheckOutcome {
                name: fresh[i].name.clone(),
                fresh_ns: fresh[i].ns_per_report,
                baseline_ns,
                normalized_ratio: normalized,
                regressed,
            }
        })
        .collect();
    (outcomes, ok)
}

// ---------------------------------------------------------------------------
// BENCH_translator.json: {"phases": {"<label>": {"<name>": {...}, ...}}}
// Hand-rolled read/merge/write — the build environment has no serde_json.
// The parser accepts only what `write_json` emits.
// ---------------------------------------------------------------------------

/// Parse the phases of an existing `BENCH_translator.json`.
///
/// Returns `(label, entries)` pairs. Unrecognized content is discarded (the
/// file is regenerated wholesale on every write).
pub fn parse_phases(text: &str) -> Vec<(String, Vec<PerfEntry>)> {
    let mut phases = Vec::new();
    // Phase blocks look like:  "label": { "name": { "ns_per_report": ... } }
    // Entries are the only objects containing "ns_per_report".
    let mut current: Option<(String, Vec<PerfEntry>)> = None;
    for line in text.lines() {
        let t = line.trim().trim_end_matches(',');
        if let Some(rest) = t.strip_prefix('"') {
            if let Some((name, tail)) = rest.split_once('"') {
                let tail = tail.trim_start_matches(':').trim();
                if tail == "{" && !name.is_empty() {
                    if name == "phases" || name == "schema" {
                        continue;
                    }
                    if current.is_none() {
                        current = Some((name.to_string(), Vec::new()));
                    } else if let Some((_, entries)) = current.as_mut() {
                        entries.push(PerfEntry {
                            name: name.to_string(),
                            ns_per_report: 0.0,
                            reports_per_sec: 0.0,
                            reports: 0,
                        });
                    }
                    continue;
                }
                // Scalar field inside an entry.
                if let Some((_, entries)) = current.as_mut() {
                    if let Some(e) = entries.last_mut() {
                        let val: f64 = tail.parse().unwrap_or(0.0);
                        match name {
                            "ns_per_report" => e.ns_per_report = val,
                            "reports_per_sec" => e.reports_per_sec = val,
                            "reports" => e.reports = val as u64,
                            _ => {}
                        }
                    }
                }
                continue;
            }
        }
        // A phase block closes at `}` column depth we cannot track exactly;
        // close the current phase when we see `}` followed by another
        // phase-level `"label": {` or end. Simplest: a lone "}" at two-space
        // indent closes the phase.
        if line.starts_with("    }") && !line.starts_with("      ") {
            if let Some(done) = current.take() {
                phases.push(done);
            }
        }
    }
    if let Some(done) = current.take() {
        phases.push(done);
    }
    phases
}

/// Serialize phases into the `BENCH_translator.json` format.
pub fn render_json(phases: &[(String, Vec<PerfEntry>)]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"dta-bench/translator-v1\",\n  \"phases\": {\n");
    for (pi, (label, entries)) in phases.iter().enumerate() {
        s.push_str(&format!("    \"{label}\": {{\n"));
        for (ei, e) in entries.iter().enumerate() {
            s.push_str(&format!(
                "      \"{}\": {{\n        \"ns_per_report\": {:.2},\n        \"reports_per_sec\": {:.0},\n        \"reports\": {}\n      }}{}\n",
                e.name,
                e.ns_per_report,
                e.reports_per_sec,
                e.reports,
                if ei + 1 < entries.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!("    }}{}\n", if pi + 1 < phases.len() { "," } else { "" }));
    }
    s.push_str("  }\n}\n");
    s
}

/// Measure the suite and merge it into `path` under `label`, replacing any
/// existing phase with the same label.
pub fn record_phase(path: &str, label: &str, window: Duration) -> Vec<PerfEntry> {
    record_phase_filtered(path, label, window, None, 1)
}

/// [`record_phase`] restricted to benchmarks whose name contains `only`,
/// repeated `repeat` times with the per-benchmark median recorded — the
/// defense against CPU-steal spikes on shared hosts.
pub fn record_phase_filtered(
    path: &str,
    label: &str,
    window: Duration,
    only: Option<&str>,
    repeat: usize,
) -> Vec<PerfEntry> {
    let repeat = repeat.max(1);
    let mut runs: Vec<Vec<PerfEntry>> = (0..repeat)
        .map(|_| translator_suite_filtered(window, only))
        .collect();
    // Median per benchmark, by ns/report.
    let results: Vec<PerfEntry> = (0..runs[0].len())
        .map(|i| {
            let mut samples: Vec<PerfEntry> =
                runs.iter_mut().map(|r| r[i].clone()).collect();
            samples.sort_by(|a, b| a.ns_per_report.total_cmp(&b.ns_per_report));
            samples.swap_remove(samples.len() / 2)
        })
        .collect();
    let mut phases = std::fs::read_to_string(path)
        .map(|t| parse_phases(&t))
        .unwrap_or_default();
    phases.retain(|(l, _)| l != label);
    phases.push((label.to_string(), results.clone()));
    std::fs::write(path, render_json(&phases)).expect("write bench json");
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, ns: f64) -> PerfEntry {
        PerfEntry {
            name: name.into(),
            ns_per_report: ns,
            reports_per_sec: 1e9 / ns,
            reports: 1000,
        }
    }

    #[test]
    fn json_roundtrips_phases() {
        let phases = vec![
            ("baseline".to_string(), vec![entry("key_write/2", 812.5), entry("append/16", 97.0)]),
            ("optimized".to_string(), vec![entry("key_write/2", 301.25)]),
        ];
        let text = render_json(&phases);
        let back = parse_phases(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "baseline");
        assert_eq!(back[0].1.len(), 2);
        assert_eq!(back[0].1[0].name, "key_write/2");
        assert!((back[0].1[0].ns_per_report - 812.5).abs() < 1e-9);
        assert_eq!(back[1].1[0].name, "key_write/2");
        assert_eq!(back[1].1[0].reports, 1000);
    }

    #[test]
    fn suite_measures_all_primitives_quickly() {
        let results = translator_suite(Duration::from_millis(20));
        let names: Vec<&str> = results.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            ["key_write/1", "key_write_single/1", "key_write/2", "key_write_single/2",
             "key_write/4", "key_write_single/4", "postcarding/5hop", "append/1",
             "append/16", "key_increment/2", "key_write_sharded/1", "key_write_sharded/2",
             "key_write_sharded/4", "key_write_sharded/8", "scenario/k4_single",
             "scenario/k4_sharded4", "scenario_congested/k4_congested_single",
             "scenario_congested/k4_congested_sharded4",
             "scenario_failover/k4_failover_single",
             "scenario_failover/k4_failover_sharded4",
             "scenario_rebalance/k4_rebalance_single",
             "scenario_rebalance/k4_rebalance_sharded4", "scenario_query/k4_single",
             "scenario_query/k4_sharded4", "scenario_large/k8_single",
             "scenario_large/k8_sharded4"]
        );
        for e in &results {
            assert!(e.reports_per_sec > 0.0, "{} measured nothing", e.name);
        }
    }

    #[test]
    fn only_filter_selects_single_benchmark() {
        let results =
            translator_suite_filtered(Duration::from_millis(10), Some("key_write/2"));
        let names: Vec<&str> = results.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["key_write/2"]);
    }

    #[test]
    fn only_filter_is_family_anchored_not_substring() {
        // `key_write` selects its own family only — not key_write_single
        // and, critically, not the thread-spawning key_write_sharded runs.
        let results = translator_suite_filtered(Duration::from_millis(10), Some("key_write"));
        let names: Vec<&str> = results.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["key_write/1", "key_write/2", "key_write/4"]);
        // A suffixed family is selectable by its own prefix.
        let sharded =
            translator_suite_filtered(Duration::from_millis(10), Some("key_write_sharded"));
        let names: Vec<&str> = sharded.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            ["key_write_sharded/1", "key_write_sharded/2", "key_write_sharded/4",
             "key_write_sharded/8"]
        );
    }

    #[test]
    fn only_scenario_selects_the_end_to_end_family() {
        // The CI bench smoke's `--only scenario` step depends on this
        // anchored selection: both K=4 scenario modes — and NOT the
        // scenario_congested / scenario_large families, which are their
        // own smoke steps.
        let results = translator_suite_filtered(Duration::from_millis(1), Some("scenario"));
        let names: Vec<&str> = results.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["scenario/k4_single", "scenario/k4_sharded4"]);
        for e in &results {
            assert!(e.reports > 0, "{} measured nothing", e.name);
        }
    }

    #[test]
    fn only_scenario_congested_selects_the_congestion_family() {
        let results =
            translator_suite_filtered(Duration::from_millis(1), Some("scenario_congested"));
        let names: Vec<&str> = results.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            ["scenario_congested/k4_congested_single", "scenario_congested/k4_congested_sharded4"]
        );
        for e in &results {
            assert!(e.reports > 0, "{} measured nothing", e.name);
        }
    }

    #[test]
    fn only_scenario_failover_selects_the_failover_family() {
        let results =
            translator_suite_filtered(Duration::from_millis(1), Some("scenario_failover"));
        let names: Vec<&str> = results.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            ["scenario_failover/k4_failover_single", "scenario_failover/k4_failover_sharded4"]
        );
        for e in &results {
            assert!(e.reports > 0, "{} measured nothing", e.name);
        }
    }

    #[test]
    fn only_scenario_rebalance_selects_the_rebalance_family() {
        let results =
            translator_suite_filtered(Duration::from_millis(1), Some("scenario_rebalance"));
        let names: Vec<&str> = results.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            ["scenario_rebalance/k4_rebalance_single",
             "scenario_rebalance/k4_rebalance_sharded4"]
        );
        for e in &results {
            assert!(e.reports > 0, "{} measured nothing", e.name);
        }
    }

    #[test]
    fn perf_gate_normalizes_host_speed_and_flags_regressions() {
        // Synthetic baseline: key_write/2 committed at an absurdly *slow*
        // value and key_write/4 committed absurdly fast. On any host the
        // fresh/baseline ratios then diverge hugely in opposite
        // directions; the median-normalization makes key_write/4 (slow
        // relative to the suite) regress while key_write/2 sails.
        let dir = std::env::temp_dir().join(format!("dta-gate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        let phases = vec![(
            "committed".to_string(),
            vec![
                entry("key_write/1", 300.0),
                entry("key_write/2", 1e9), // fresh will look ~0: no regression
                entry("key_write/4", 1.0), // fresh will look huge: regression
            ],
        )];
        std::fs::write(&path, render_json(&phases)).unwrap();
        let (outcomes, ok) = check_against_baseline(
            path.to_str().unwrap(),
            Duration::from_millis(5),
            Some("key_write"),
            1,
            0.25,
        );
        assert!(!ok, "the planted regression must fail the gate");
        let by_name = |n: &str| outcomes.iter().find(|o| o.name == n).unwrap();
        assert!(by_name("key_write/4").regressed);
        assert!(!by_name("key_write/2").regressed);
        // A two-benchmark selection still catches a one-sided regression
        // (leave-one-out normalization: each is judged against the other).
        let two = vec![(
            "committed".to_string(),
            vec![entry("key_write/2", 1e9), entry("key_write/4", 1.0)],
        )];
        std::fs::write(&path, render_json(&two)).unwrap();
        let (outcomes, ok) = check_against_baseline(
            path.to_str().unwrap(),
            Duration::from_millis(5),
            Some("key_write"),
            1,
            0.25,
        );
        assert!(!ok);
        assert!(outcomes.iter().find(|o| o.name == "key_write/4").unwrap().regressed);
        // A single overlapping benchmark cannot be normalized: fail closed.
        let (_, ok) = check_against_baseline(
            path.to_str().unwrap(),
            Duration::from_millis(1),
            Some("key_write/2"),
            1,
            0.25,
        );
        assert!(!ok, "one-benchmark selections must refuse, not vacuously pass");
        // Unreadable baseline fails closed.
        let (_, ok) = check_against_baseline(
            dir.join("missing.json").to_str().unwrap(),
            Duration::from_millis(1),
            Some("key_write/2"),
            1,
            0.25,
        );
        assert!(!ok);
        std::fs::remove_dir_all(&dir).ok();
    }
}

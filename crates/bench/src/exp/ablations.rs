//! Ablation studies of DTA's design choices (DESIGN.md §6).
//!
//! These go beyond the paper's figures: each table isolates one design
//! decision the paper makes and quantifies the alternative.

use dta_analysis::keywrite::kw_wrong_return_bound;
use dta_analysis::montecarlo::simulate_keywrite;
use dta_analysis::postcarding::kw_vs_postcarding_wrong_output;
use dta_analysis::table::{fmt_pct, fmt_rate};
use dta_analysis::Table;
use dta_collector::layout::KwLayout;
use dta_collector::{KeyWriteStore, QueryPolicy};
use dta_core::TelemetryKey;
use dta_rdma::mr::{MemoryRegion, MrAccess};
use dta_rdma::nic::{NicConfig, NicPerfModel};
use dta_translator::{translator_footprint, TranslatorFeatures};

use super::system::append_wire_bytes;

/// Ablation 1: Key-Write query policy (Appendix A.5 discusses plurality vs
/// consensus). Measured on the real byte-level store.
pub fn ablation_query_policy(quick: bool) -> Table {
    let trials = if quick { 150 } else { 600 };
    let slots: u64 = 1 << 12;
    let mut t = Table::new(
        "Ablation — KW query policy (N=4, b=32): found / wrong rates",
        &["α", "FirstMatch", "Plurality", "Consensus(2)"],
    );
    for alpha in [0.1, 0.5, 1.0] {
        let mut row = vec![format!("{alpha:.1}")];
        for policy in [QueryPolicy::FirstMatch, QueryPolicy::Plurality, QueryPolicy::Consensus(2)] {
            let mut found = 0u32;
            for trial in 0..trials {
                let layout = KwLayout { base_va: 0, slots, value_bytes: 4 };
                let region =
                    MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
                let store = KeyWriteStore::new(layout, region, 4);
                let victim = TelemetryKey::from_u64(u64::MAX - trial as u64);
                store.insert_direct(&victim, &[7; 4], 4);
                let others = (alpha * slots as f64) as u64;
                for i in 0..others {
                    let k = TelemetryKey::from_u64(trial as u64 * others + i);
                    store.insert_direct(&k, &[1; 4], 4);
                }
                if let dta_collector::QueryOutcome::Found(v) =
                    store.query(&victim, 4, policy)
                {
                    if v == vec![7; 4] {
                        found += 1;
                    }
                }
            }
            row.push(fmt_pct(found as f64 / trials as f64));
        }
        t.row(&row);
    }
    t
}

/// Ablation 2: checksum width `b` — the memory/accuracy trade of A.5.
pub fn ablation_checksum_width(quick: bool) -> Table {
    let trials = if quick { 1_000 } else { 5_000 };
    let mut t = Table::new(
        "Ablation — checksum width b (N=2, α=1.0): wrong-return rates",
        &["b [bits]", "Analytic bound", "Monte-Carlo wrong", "Slot overhead"],
    );
    for b in [4u32, 8, 16, 32] {
        let mc = simulate_keywrite(1 << 10, 2, b, 1.0, trials, 0xB + b as u64);
        t.row(&[
            b.to_string(),
            format!("{:.2e}", kw_wrong_return_bound(2, b, 1.0)),
            format!("{:.2e}", mc.wrong_rate()),
            format!("+{}B", b.div_ceil(8)),
        ]);
    }
    t
}

/// Ablation 3: Postcarding's XOR encoding vs naive KW-per-postcard — the §4
/// comparison as a sweep.
pub fn ablation_postcard_encoding() -> Table {
    let mut t = Table::new(
        "Ablation — Postcarding XOR encoding vs KW-per-postcard (|V|=2^18, B=5, α=0.1)",
        &["N", "KW wrong (2b bits/slot)", "Postcarding wrong (b bits/slot)", "Bits saved/path", "Writes saved"],
    );
    for n in [1u32, 2, 4] {
        let (kw, pc) = kw_vs_postcarding_wrong_output(n, 32, 0.1, 1 << 18, 5);
        // KW stores csum(32) + value(32) per hop = 5*64; Postcarding stores
        // 5*32 padded to 256 bits.
        t.row(&[
            n.to_string(),
            format!("{kw:.1e}"),
            format!("{pc:.1e}"),
            format!("{}", 5 * 64 - 256),
            format!("{}x", 5), // one chunk write instead of 5 per copy
        ]);
    }
    t
}

/// Ablation 4: Append batch size — collection speed (F15) against the
/// stateful-ALU cost (T3): "batching also has the potential for a tenfold
/// increase in collection throughput, and we conclude that it is a
/// worthwhile tradeoff".
pub fn ablation_batch_tradeoff() -> Table {
    let nic = NicPerfModel::new(NicConfig::bluefield2());
    let mut t = Table::new(
        "Ablation — Append batch size: throughput vs stateful-ALU footprint",
        &["Batch", "Throughput [rps]", "Stateful ALU", "Rps per ALU-%"],
    );
    for batch in [1u32, 2, 4, 8, 16] {
        let rate = nic.report_rate(append_wire_bytes(batch as usize, 4), batch as f64, 1.0);
        let alu = translator_footprint(TranslatorFeatures {
            append_batch: batch,
            ..TranslatorFeatures::paper_eval()
        })
        .stateful_alu;
        t.row(&[
            batch.to_string(),
            fmt_rate(rate),
            format!("{alu:.1}%"),
            fmt_rate(rate / alu),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_trade_availability_for_certainty() {
        let t = ablation_query_policy(true);
        assert_eq!(t.len(), 3);
        // At every load, Consensus(2) finds no more than FirstMatch.
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
            assert!(parse(cells[3]) <= parse(cells[1]) + 8.0, "consensus should not find more: {line}");
        }
    }

    #[test]
    fn narrow_checksums_measurably_wrong() {
        let t = ablation_checksum_width(true);
        let csv = t.to_csv();
        let b4 = csv.lines().find(|l| l.starts_with("4,")).unwrap();
        let b32 = csv.lines().find(|l| l.starts_with("32,")).unwrap();
        // b=4 shows real wrong returns; b=32 shows none.
        assert!(!b4.contains("0.00e0"), "b=4 should err: {b4}");
        assert!(b32.contains("0.00e0"), "b=32 should not err in 1k trials: {b32}");
    }

    #[test]
    fn batching_efficiency_improves_then_saturates() {
        let t = ablation_batch_tradeoff();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn postcard_encoding_always_wins() {
        let t = ablation_postcard_encoding();
        assert_eq!(t.len(), 3);
    }
}

//! Appendix experiments: the A.5 / A.6 bounds against Monte-Carlo runs.

use dta_analysis::keywrite::{kw_empty_return_bound, kw_wrong_return_bound};
use dta_analysis::montecarlo::simulate_keywrite;
use dta_analysis::postcarding::{
    kw_vs_postcarding_wrong_output, pc_empty_return_bound, pc_wrong_return_bound,
};
use dta_analysis::Table;

/// Appendix A.5: Key-Write bounds, with Monte-Carlo validation of the
/// empty-return term.
pub fn appendix_a5(quick: bool) -> Table {
    let trials = if quick { 500 } else { 3_000 };
    let mut t = Table::new(
        "Appendix A.5 — Key-Write error bounds (b=32, α=0.1)",
        &["N", "Empty-return bound", "Monte-Carlo empty", "Wrong-return bound"],
    );
    for n in [1u32, 2, 4, 8] {
        let bound = kw_empty_return_bound(n, 32, 0.1);
        let mc = simulate_keywrite(1 << 13, n, 32, 0.1, trials, 1000 + n as u64);
        t.row(&[
            n.to_string(),
            format!("{bound:.4}"),
            format!("{:.4}", mc.empty_rate()),
            format!("{:.2e}", kw_wrong_return_bound(n, 32, 0.1)),
        ]);
    }
    t
}

/// Appendix A.6: Postcarding bounds and the KW-per-postcard comparison.
pub fn appendix_a6() -> Table {
    const V: u64 = 1 << 18;
    let mut t = Table::new(
        "Appendix A.6 — Postcarding error bounds (|V|=2^18, B=5, b=32, α=0.1)",
        &["N", "Empty-return bound", "Wrong-return bound", "KW-per-postcard wrong (2x bits)"],
    );
    for n in [1u32, 2, 4] {
        let (kw_wrong, pc_wrong) = kw_vs_postcarding_wrong_output(n, 32, 0.1, V, 5);
        t.row(&[
            n.to_string(),
            format!("{:.4}", pc_empty_return_bound(n, 32, 0.1, V, 5)),
            format!("{pc_wrong:.2e}"),
            format!("{kw_wrong:.2e}"),
        ]);
    }
    let _ = pc_wrong_return_bound(2, 32, 0.1, V, 5);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a5_table_has_all_redundancies() {
        let t = appendix_a5(true);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn a6_postcarding_wrong_is_negligible() {
        let csv = appendix_a6().to_csv();
        // N=2 row: wrong bound below 1e-22.
        let row = csv.lines().find(|l| l.starts_with("2,")).unwrap();
        assert!(row.contains("e-2"), "expected ~1e-22 magnitude: {row}");
    }
}

//! Experiment registry: one entry per paper table/figure.

pub mod ablations;
pub mod analysis;
pub mod harness;
pub mod motivation;
pub mod primitives;
pub mod system;

use dta_analysis::Table;

/// Identifier of a reproducible table/figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    /// Table 1: per-switch report rates.
    T1,
    /// Figure 2a: baseline collection speed vs cores.
    F2a,
    /// Figure 2b: memory-stalled cycles vs cores.
    F2b,
    /// Figure 2c: cycle breakdown.
    F2c,
    /// Figure 3: cores needed vs network size.
    F3,
    /// Table 2: system-to-primitive mapping.
    T2,
    /// Figure 7a: DTA vs CPU collectors, INT collection.
    F7a,
    /// Figure 7b: Marple capacity (switches per collector).
    F7b,
    /// Figure 8: memory instructions per report.
    F8,
    /// Figure 9: reporter resource footprints.
    F9,
    /// Table 3: translator resource footprint.
    T3,
    /// Figure 10: Key-Write collection rate vs redundancy.
    F10,
    /// Figure 11a/11b: Key-Write query rate and breakdown.
    F11,
    /// Figure 12: query success vs load factor.
    F12,
    /// Figure 13: data longevity.
    F13,
    /// Figure 14: Postcarding throughput vs cache size.
    F14,
    /// Figure 15: Append throughput vs batch size.
    F15,
    /// Figure 16a/16b: Append polling rate and breakdown.
    F16,
    /// Appendix A.5: Key-Write bounds vs Monte Carlo.
    A5,
    /// Appendix A.6: Postcarding bounds.
    A6,
    /// Ablation studies (DESIGN.md §6): query policies, checksum width,
    /// postcard encoding, batch tradeoff.
    Ablations,
}

impl ExperimentId {
    /// All experiments in paper order.
    pub const ALL: [ExperimentId; 21] = [
        ExperimentId::T1,
        ExperimentId::F2a,
        ExperimentId::F2b,
        ExperimentId::F2c,
        ExperimentId::F3,
        ExperimentId::T2,
        ExperimentId::F7a,
        ExperimentId::F7b,
        ExperimentId::F8,
        ExperimentId::F9,
        ExperimentId::T3,
        ExperimentId::F10,
        ExperimentId::F11,
        ExperimentId::F12,
        ExperimentId::F13,
        ExperimentId::F14,
        ExperimentId::F15,
        ExperimentId::F16,
        ExperimentId::A5,
        ExperimentId::A6,
        ExperimentId::Ablations,
    ];

    /// CLI name (`t1`, `f7a`, ...).
    pub fn name(self) -> &'static str {
        match self {
            ExperimentId::T1 => "t1",
            ExperimentId::F2a => "f2a",
            ExperimentId::F2b => "f2b",
            ExperimentId::F2c => "f2c",
            ExperimentId::F3 => "f3",
            ExperimentId::T2 => "t2",
            ExperimentId::F7a => "f7a",
            ExperimentId::F7b => "f7b",
            ExperimentId::F8 => "f8",
            ExperimentId::F9 => "f9",
            ExperimentId::T3 => "t3",
            ExperimentId::F10 => "f10",
            ExperimentId::F11 => "f11",
            ExperimentId::F12 => "f12",
            ExperimentId::F13 => "f13",
            ExperimentId::F14 => "f14",
            ExperimentId::F15 => "f15",
            ExperimentId::F16 => "f16",
            ExperimentId::A5 => "a5",
            ExperimentId::A6 => "a6",
            ExperimentId::Ablations => "ablations",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|e| e.name() == s)
    }
}

/// All experiment ids.
pub fn all_experiments() -> &'static [ExperimentId] {
    &ExperimentId::ALL
}

/// Run one experiment, returning its tables. `quick` reduces trial counts
/// for CI-speed runs.
pub fn run_experiment(id: ExperimentId, quick: bool) -> Vec<Table> {
    match id {
        ExperimentId::T1 => vec![motivation::table1()],
        ExperimentId::F2a => vec![motivation::figure2a()],
        ExperimentId::F2b => vec![motivation::figure2b()],
        ExperimentId::F2c => vec![motivation::figure2c()],
        ExperimentId::F3 => vec![motivation::figure3()],
        ExperimentId::T2 => vec![system::table2()],
        ExperimentId::F7a => vec![system::figure7a()],
        ExperimentId::F7b => vec![system::figure7b(quick)],
        ExperimentId::F8 => vec![system::figure8(quick)],
        ExperimentId::F9 => vec![system::figure9()],
        ExperimentId::T3 => vec![system::table3()],
        ExperimentId::F10 => vec![primitives::figure10()],
        ExperimentId::F11 => primitives::figure11(quick),
        ExperimentId::F12 => vec![primitives::figure12(quick)],
        ExperimentId::F13 => vec![primitives::figure13(quick)],
        ExperimentId::F14 => vec![primitives::figure14(quick)],
        ExperimentId::F15 => vec![primitives::figure15()],
        ExperimentId::F16 => primitives::figure16(quick),
        ExperimentId::A5 => vec![analysis::appendix_a5(quick)],
        ExperimentId::A6 => vec![analysis::appendix_a6()],
        ExperimentId::Ablations => vec![
            ablations::ablation_query_policy(quick),
            ablations::ablation_checksum_width(quick),
            ablations::ablation_postcard_encoding(),
            ablations::ablation_batch_tradeoff(),
        ],
    }
}

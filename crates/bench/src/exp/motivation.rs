//! §2 motivation experiments: Table 1, Figure 2, Figure 3.

use dta_analysis::table::{fmt_pct, fmt_rate};
use dta_analysis::Table;
use dta_baselines::{CollectorKind, CpuModel};
use dta_telemetry::{MonitoringSystem, ReportRateModel};

/// Table 1: per-switch report generation rates.
pub fn table1() -> Table {
    let model = ReportRateModel::default();
    let mut t = Table::new(
        "Table 1 — Per-reporter data generation rates (6.4 Tbps switches, 40% load)",
        &["System", "Report rate", "Paper"],
    );
    let paper = ["19M", "7.2M", "6.7M", "950K"];
    for (sys, paper) in MonitoringSystem::ALL.into_iter().zip(paper) {
        t.row(&[
            sys.label().to_string(),
            fmt_rate(model.reports_per_sec(sys)),
            paper.to_string(),
        ]);
    }
    t
}

/// Figure 2a: MultiLog vs Cuckoo collection speed vs cores.
pub fn figure2a() -> Table {
    let cpu = CpuModel::default();
    let mut t = Table::new(
        "Figure 2a — CPU-collector throughput vs cores",
        &["Cores", "MultiLog [rps]", "Cuckoo [rps]"],
    );
    for cores in (2..=20).step_by(2) {
        t.row(&[
            cores.to_string(),
            fmt_rate(cpu.throughput(CollectorKind::MultiLog, cores).reports_per_sec),
            fmt_rate(cpu.throughput(CollectorKind::Cuckoo, cores).reports_per_sec),
        ]);
    }
    t
}

/// Figure 2b: memory-stalled cycle fraction vs cores.
pub fn figure2b() -> Table {
    let cpu = CpuModel::default();
    let mut t = Table::new(
        "Figure 2b — Memory-stalled cycles vs cores",
        &["Cores", "MultiLog", "Cuckoo"],
    );
    for cores in (2..=20).step_by(2) {
        t.row(&[
            cores.to_string(),
            fmt_pct(cpu.throughput(CollectorKind::MultiLog, cores).stalled_fraction),
            fmt_pct(cpu.throughput(CollectorKind::Cuckoo, cores).stalled_fraction),
        ]);
    }
    t
}

/// Figure 2c: per-report cycle breakdown.
pub fn figure2c() -> Table {
    let mut t = Table::new(
        "Figure 2c — Cycle breakdown per report",
        &["Collector", "I/O", "Parsing", "Insertion", "Total cycles"],
    );
    for kind in [CollectorKind::MultiLog, CollectorKind::Cuckoo] {
        let c = kind.cost();
        t.row(&[
            kind.label().to_string(),
            fmt_pct(c.io_cycles / c.total_cycles()),
            fmt_pct(c.parse_cycles / c.total_cycles()),
            fmt_pct(c.insert_fraction()),
            format!("{:.0}", c.total_cycles()),
        ]);
    }
    t
}

/// Figure 3: cores needed for MultiLog collection vs network size.
pub fn figure3() -> Table {
    let sizes = [1u64, 10, 100, 1_000, 10_000];
    let systems = [
        MonitoringSystem::IntPostcards,
        MonitoringSystem::MarpleFlowletSizes,
        MonitoringSystem::NetSeerLossEvents,
    ];
    let points = dta_analysis::cost::fig3_cores_needed(&sizes, &systems, 16);
    let mut t = Table::new(
        "Figure 3 — Cores for single-metric MultiLog collection vs network size",
        &["Switches", "INT 0.5% [cores]", "Flowlet Sizes [cores]", "Loss Events [cores]"],
    );
    for (i, &switches) in sizes.iter().enumerate() {
        let row: Vec<String> = std::iter::once(switches.to_string())
            .chain((0..3).map(|s| points[s * sizes.len() + i].cores.to_string()))
            .collect();
        t.row(&row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_motivation_tables_render() {
        for t in [table1(), figure2a(), figure2b(), figure2c(), figure3()] {
            assert!(!t.is_empty());
            assert!(t.to_markdown().len() > 50);
        }
    }

    #[test]
    fn figure3_rows_are_monotonic() {
        let t = figure3();
        assert_eq!(t.len(), 5);
    }
}

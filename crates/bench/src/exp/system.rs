//! End-to-end system experiments: Table 2, Figure 7, Figure 8, Figure 9,
//! Table 3.

use bytes::Bytes;
use dta_analysis::table::fmt_rate;
use dta_analysis::Table;
use dta_baselines::{CollectorKind, CpuModel};
use dta_collector::service::ServiceConfig;
use dta_core::{DtaReport, TelemetryKey};
use dta_rdma::nic::{NicConfig, NicPerfModel};
use dta_rdma::verbs::RdmaOp;
use dta_reporter::{reporter_footprint, ReporterKind};
use dta_switch::ResourceClass;
use dta_telemetry::marple::{MarpleFlowletSizes, MarpleLossyFlows, MarpleTcpTimeouts};
use dta_telemetry::traces::{TraceConfig, TraceGenerator};
use dta_telemetry::{ReportRateModel, TABLE2_INTEGRATIONS};
use dta_translator::{translator_footprint, TranslatorConfig, TranslatorFeatures};

use super::harness::Pair;

/// Wire bytes of a KW write carrying `value_bytes` of telemetry.
pub fn kw_wire_bytes(value_bytes: usize) -> usize {
    RdmaOp::Write { rkey: 0, va: 0, data: Bytes::from(vec![0u8; 4 + value_bytes]) }.wire_len()
}

/// Wire bytes of a Postcarding chunk write (`B` hops padded to a power of
/// two, 4 B slots).
pub fn postcard_wire_bytes(hops: usize) -> usize {
    let chunk = (hops * 4).next_power_of_two();
    RdmaOp::Write { rkey: 0, va: 0, data: Bytes::from(vec![0u8; chunk]) }.wire_len()
}

/// Wire bytes of an Append batch write.
pub fn append_wire_bytes(batch: usize, entry_bytes: usize) -> usize {
    RdmaOp::Write { rkey: 0, va: 0, data: Bytes::from(vec![0u8; batch * entry_bytes]) }.wire_len()
}

/// Table 2: the primitive each monitoring system maps onto.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2 — Telemetry systems mapped onto DTA primitives",
        &["System", "Monitoring task", "Primitive"],
    );
    for (system, task, primitive) in TABLE2_INTEGRATIONS {
        t.row(&[system.to_string(), task.to_string(), primitive.to_string()]);
    }
    t
}

/// Figure 7a: generic 4 B INT collection, CPU baselines vs DTA primitives.
pub fn figure7a() -> Table {
    let cpu = CpuModel::default();
    let nic = NicPerfModel::new(NicConfig::bluefield2());
    let baseline = cpu.throughput(CollectorKind::MultiLog, 16).reports_per_sec;

    let mut t = Table::new(
        "Figure 7a — 4B INT collection throughput (baselines: 16 cores)",
        &["Collector", "Reports/sec", "vs MultiLog"],
    );
    for kind in [CollectorKind::BTrDb, CollectorKind::MultiLog, CollectorKind::IntCollector] {
        let r = cpu.throughput(kind, 16).reports_per_sec;
        t.row(&[
            kind.label().to_string(),
            fmt_rate(r),
            format!("{:.1}x", r / baseline),
        ]);
    }
    // DTA: Key-Write N=1; Postcarding 5-hop aggregation; Append batch 16.
    let kw = nic.report_rate(kw_wire_bytes(4), 1.0, 1.0);
    let pc = nic.report_rate(postcard_wire_bytes(5), 5.0, 1.0);
    let ap = nic.report_rate(append_wire_bytes(16, 4), 16.0, 1.0);
    for (name, rate) in [
        ("DTA Key-Write (N=1)", kw),
        ("DTA Postcarding (5-hop)", pc),
        ("DTA Append (batch 16)", ap),
    ] {
        t.row(&[name.to_string(), fmt_rate(rate), format!("{:.1}x", rate / baseline)]);
    }
    t
}

/// Figure 7b: Marple reporters one collector can sustain.
pub fn figure7b(quick: bool) -> Table {
    // Measure per-switch report rates empirically on the synthetic trace.
    let n = if quick { 50_000 } else { 400_000 };
    let mut gen = TraceGenerator::new(TraceConfig::default());
    let mut lossy = MarpleLossyFlows::new(0.01, 0, 0.02, 128, 7);
    let mut timeouts = MarpleTcpTimeouts::new(1.0 / 500.0, 1, 8);
    let mut flowlets = MarpleFlowletSizes::new(500_000, 10, 8);
    let (mut n_lossy, mut n_timeout, mut n_flowlet) = (0u64, 0u64, 0u64);
    for _ in 0..n {
        let p = gen.next_packet();
        n_lossy += lossy.on_packet(&p).is_some() as u64;
        n_timeout += timeouts.on_packet(&p).is_some() as u64;
        n_flowlet += flowlets.on_packet(&p).is_some() as u64;
    }
    let model = ReportRateModel::default();
    let pps = model.packets_per_sec();
    let per_switch =
        |reports: u64| -> f64 { (reports as f64 / n as f64) * pps };
    // The synthetic trace reproduces the Benson traces' flow-size and
    // popularity structure but not their exact burst timing, which is what
    // sets the flowlet-eviction rate; for that query we use the calibrated
    // Table 1 rate (the generators above still exercise the full report
    // path for correctness).
    let flowlet_rate = model.reports_per_sec(
        dta_telemetry::MonitoringSystem::MarpleFlowletSizes,
    );
    let _ = n_flowlet;

    let cpu = CpuModel::default();
    let nic = NicPerfModel::new(NicConfig::bluefield2());
    let multilog = cpu.throughput(CollectorKind::MultiLog, 16).reports_per_sec;
    let append = nic.report_rate(append_wire_bytes(16, 4), 16.0, 1.0);
    let kw = nic.report_rate(kw_wire_bytes(4), 1.0, 1.0);

    let mut t = Table::new(
        "Figure 7b — Marple reporters per collector",
        &["Query", "Per-switch rate", "MultiLog [switches]", "DTA [switches]", "Gain"],
    );
    for (name, rate, dta_rate) in [
        ("Lossy Flows (Append)", per_switch(n_lossy), append),
        ("TCP Timeout (Key-Write)", per_switch(n_timeout), kw),
        ("Flowlet Sizes (Append)", flowlet_rate, append),
    ] {
        let base_cap = (multilog / rate).floor();
        let dta_cap = (dta_rate / rate).floor();
        t.row(&[
            name.to_string(),
            fmt_rate(rate),
            format!("{base_cap:.0}"),
            format!("{dta_cap:.0}"),
            format!("{:.0}x", dta_cap / base_cap.max(1.0)),
        ]);
    }
    t
}

/// Figure 8: memory instructions per ingested report, measured on the real
/// stores through the translator.
pub fn figure8(quick: bool) -> Table {
    let reports = if quick { 4_000u64 } else { 40_000 };
    let mut t = Table::new(
        "Figure 8 — Memory instructions per report (N=2, B=5, batch 16)",
        &["Collector", "Mem instr / report", "Paper"],
    );
    t.row(&[
        "MultiLog".to_string(),
        format!("{:.2}", CollectorKind::MultiLog.cost().mem_instructions),
        "343".to_string(),
    ]);

    // Key-Write, N=2.
    let mut pair = Pair::new(ServiceConfig::default(), TranslatorConfig::default());
    for i in 0..reports {
        let r = DtaReport::key_write(i as u32, TelemetryKey::from_u64(i), 2, vec![0u8; 4]);
        pair.process(0, &r);
    }
    let kw_instr = pair.collector.memory_instructions() as f64 / reports as f64;
    t.row(&["DTA Key-Write".to_string(), format!("{kw_instr:.2}"), "2.00".to_string()]);

    // Postcarding, N=2, 5 hops aggregated into one write per chunk.
    let mut pair = Pair::new(
        ServiceConfig::default(),
        TranslatorConfig { postcard_redundancy: 2, ..TranslatorConfig::default() },
    );
    let flows = reports / 5;
    for f in 0..flows {
        let key = TelemetryKey::from_u64(f);
        for hop in 0..5u8 {
            pair.process(0, &DtaReport::postcard(0, key, hop, 5, hop as u32 + 1));
        }
    }
    let pc_instr = pair.collector.memory_instructions() as f64 / (flows * 5) as f64;
    t.row(&["DTA Postcarding".to_string(), format!("{pc_instr:.2}"), "0.40".to_string()]);

    // Append, batch 16.
    let mut pair = Pair::new(ServiceConfig::default(), TranslatorConfig::default());
    for i in 0..reports {
        pair.process(0, &DtaReport::append(i as u32, (i % 8) as u32, (i as u32).to_be_bytes().to_vec()));
    }
    let ap_instr = pair.collector.memory_instructions() as f64 / reports as f64;
    t.row(&["DTA Append".to_string(), format!("{ap_instr:.2}"), "0.06".to_string()]);
    t
}

/// Figure 9: reporter hardware footprints.
pub fn figure9() -> Table {
    let mut t = Table::new(
        "Figure 9 — Reporter resource usage (% of chip)",
        &["Resource", "RDMA", "DTA", "UDP"],
    );
    let footprints: Vec<_> = ReporterKind::ALL.iter().map(|k| reporter_footprint(*k)).collect();
    for class in ResourceClass::ALL {
        t.row(&[
            class.label().to_string(),
            format!("{:.1}%", footprints[0].get(class)),
            format!("{:.1}%", footprints[1].get(class)),
            format!("{:.1}%", footprints[2].get(class)),
        ]);
    }
    t
}

/// Table 3: translator footprint, base and with Append batching.
pub fn table3() -> Table {
    let base = translator_footprint(TranslatorFeatures {
        append_batch: 1,
        ..TranslatorFeatures::paper_eval()
    });
    let batched = translator_footprint(TranslatorFeatures::paper_eval());
    let mut t = Table::new(
        "Table 3 — Translator resource footprint (KW + Postcarding + Append)",
        &["Resource", "Base", "+Batching (16x4B)"],
    );
    for class in [
        ResourceClass::Sram,
        ResourceClass::MatchCrossbar,
        ResourceClass::TableIds,
        ResourceClass::TernaryBus,
        ResourceClass::StatefulAlu,
    ] {
        t.row(&[
            class.label().to_string(),
            format!("{:.1}%", base.get(class)),
            format!("+{:.1}%", batched.get(class) - base.get(class)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7a_reproduces_headline_speedups() {
        let t = figure7a();
        let md = t.to_markdown();
        // The 4x / 16x / 41x claims should be visible (allowing rounding).
        assert!(md.contains("DTA Key-Write"));
        assert!(md.contains("DTA Append"));
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn figure8_matches_paper_within_tolerance() {
        let t = figure8(true);
        let csv = t.to_csv();
        // KW N=2 must measure exactly 2 RDMA ops per report.
        assert!(csv.contains("DTA Key-Write,2.00"), "csv:\n{csv}");
        // Postcarding: N=2 chunk writes per 5 postcards = 0.40.
        assert!(csv.contains("DTA Postcarding,0.40"), "csv:\n{csv}");
        // Append: 1 write per 16 entries = 0.06.
        assert!(csv.contains("DTA Append,0.06"), "csv:\n{csv}");
    }

    #[test]
    fn table2_covers_all_four_primitives() {
        let csv = table2().to_csv();
        for p in ["Key-Write", "Postcarding", "Append", "Key-Increment"] {
            assert!(csv.contains(p), "missing {p}");
        }
    }

    #[test]
    fn figure7b_dta_always_wins() {
        let t = figure7b(true);
        assert_eq!(t.len(), 3);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let gain: f64 = line
                .rsplit(',')
                .next()
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap();
            assert!(gain > 1.0, "DTA must beat MultiLog: {line}");
        }
    }

    #[test]
    fn wire_sizes_are_consistent() {
        assert_eq!(kw_wire_bytes(4), 82); // 74B overhead + 8B slot
        assert_eq!(postcard_wire_bytes(5), 106); // 74 + 32
        assert_eq!(append_wire_bytes(16, 4), 138); // 74 + 64
    }
}

//! Shared harness: a fully connected collector + translator pair.

use dta_collector::service::{
    CollectorService, ServiceConfig, SERVICE_APPEND, SERVICE_CMS, SERVICE_KW, SERVICE_POSTCARD,
};
use dta_core::DtaReport;
use dta_rdma::cm::CmRequester;
use dta_rdma::nic::RxOutcome;
use dta_translator::{Translator, TranslatorConfig};

/// A connected collector/translator pair plus delivery stats.
pub struct Pair {
    /// The collector.
    pub collector: CollectorService,
    /// The translator.
    pub translator: Translator,
    /// RoCE packets delivered to the NIC.
    pub delivered: u64,
    /// RoCE packets rejected by the NIC.
    pub rejected: u64,
}

impl Pair {
    /// Build and connect all four services.
    pub fn new(svc: ServiceConfig, tr: TranslatorConfig) -> Self {
        let mut collector = CollectorService::new(svc);
        let mut translator = Translator::new(tr);
        let services = [
            (SERVICE_KW, collector.keywrite.is_some()),
            (SERVICE_POSTCARD, collector.postcarding.is_some()),
            (SERVICE_APPEND, collector.append.is_some()),
            (SERVICE_CMS, collector.key_increment.is_some()),
        ];
        for (i, (service, enabled)) in services.into_iter().enumerate() {
            if !enabled {
                continue;
            }
            let req = CmRequester::new(0x40 + i as u32, 0);
            let reply = collector.handle_cm(&req.request(service));
            let (qp, params) = req.complete(&reply).expect("service published");
            match service {
                SERVICE_KW => translator.connect_key_write(qp, params),
                SERVICE_POSTCARD => translator.connect_postcarding(qp, params),
                SERVICE_APPEND => translator.connect_append(qp, params),
                SERVICE_CMS => translator.connect_key_increment(qp, params),
                _ => unreachable!(),
            }
        }
        Pair { collector, translator, delivered: 0, rejected: 0 }
    }

    /// Translate one report and execute the resulting RDMA ops.
    pub fn process(&mut self, now_ns: u64, report: &DtaReport) {
        let out = self.translator.process(now_ns, report);
        for pkt in &out.packets {
            match self.collector.nic_ingress(pkt) {
                RxOutcome::Executed(_) => self.delivered += 1,
                _ => self.rejected += 1,
            }
        }
    }

    /// Flush translator-held state through to the collector.
    pub fn flush(&mut self, now_ns: u64) {
        let out = self.translator.flush(now_ns);
        for pkt in &out.packets {
            match self.collector.nic_ingress(pkt) {
                RxOutcome::Executed(_) => self.delivered += 1,
                _ => self.rejected += 1,
            }
        }
    }
}

//! Per-primitive experiments: Figures 10–16.

use dta_analysis::montecarlo::{simulate_keywrite, simulate_keywrite_aging};
use dta_analysis::table::{fmt_pct, fmt_rate};
use dta_analysis::Table;
use dta_collector::layout::{AppendLayout, KwLayout};
use dta_collector::query::{parallel_append_poll, parallel_kw_query};
use dta_collector::{AppendReader, KeyWriteStore, KwQueryBreakdown, PollBreakdown, QueryPolicy};
use dta_core::TelemetryKey;
use dta_rdma::mr::{MemoryRegion, MrAccess};
use dta_rdma::nic::{NicConfig, NicPerfModel};
use dta_translator::PostcardCache;

use super::system::{append_wire_bytes, kw_wire_bytes, postcard_wire_bytes};

/// Figure 10: Key-Write collection rate vs redundancy, 4 B vs 20 B.
pub fn figure10() -> Table {
    let nic = NicPerfModel::new(NicConfig::bluefield2());
    let mut t = Table::new(
        "Figure 10 — Key-Write collection rate vs redundancy",
        &["N", "INT postcards 4B [rps]", "5-hop path 20B [rps]"],
    );
    for n in 1..=4u32 {
        t.row(&[
            n.to_string(),
            fmt_rate(nic.report_rate(kw_wire_bytes(4), 1.0, n as f64)),
            fmt_rate(nic.report_rate(kw_wire_bytes(20), 1.0, n as f64)),
        ]);
    }
    t
}

/// Figure 11: Key-Write query rate vs cores (11a) and per-query breakdown
/// (11b), measured on the real store.
pub fn figure11(quick: bool) -> Vec<Table> {
    // Scaled-down store: the paper uses 4 GiB / 100M queries; we keep the
    // load factor (α ≈ 0.1) and shrink both by ~1000x.
    let slots: u64 = if quick { 1 << 16 } else { 1 << 21 };
    let keys_n: usize = (slots / 10) as usize;
    let layout = KwLayout { base_va: 0, slots, value_bytes: 4 };
    let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
    let store = KeyWriteStore::new(layout, region, 4);
    let keys: Vec<TelemetryKey> = (0..keys_n as u64).map(TelemetryKey::from_u64).collect();
    for k in &keys {
        store.insert_direct(k, &[1, 2, 3, 4], 4);
    }

    let mut rate_table = Table::new(
        "Figure 11a — Key-Write query rate vs cores",
        &["Cores", "N=1 [q/s]", "N=2 [q/s]", "N=4 [q/s]"],
    );
    let max_cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(4);
    for cores in [1usize, 2, 4, 8] {
        if cores > max_cores {
            break;
        }
        let mut row = vec![cores.to_string()];
        for n in [1usize, 2, 4] {
            let st = parallel_kw_query(&store, &keys, n, QueryPolicy::Plurality, cores);
            row.push(fmt_rate(st.rate()));
        }
        rate_table.row(&row);
    }

    let mut breakdown = KwQueryBreakdown::default();
    let sample = keys.len().min(20_000);
    for k in &keys[..sample] {
        store.query_with_breakdown(k, 2, QueryPolicy::Plurality, &mut breakdown);
    }
    let mut bd_table = Table::new(
        "Figure 11b — Per-query execution breakdown (N=2)",
        &["Component", "ns/query"],
    );
    bd_table.row(&[
        "Checksum".to_string(),
        format!("{:.1}", breakdown.checksum_ns as f64 / sample as f64),
    ]);
    bd_table.row(&[
        "Get Slot(s)".to_string(),
        format!("{:.1}", breakdown.get_slots_ns as f64 / sample as f64),
    ]);
    vec![rate_table, bd_table]
}

/// Figure 12: query success rate vs load factor for N ∈ {1,2,4,8}.
pub fn figure12(quick: bool) -> Table {
    let trials = if quick { 400 } else { 2_000 };
    let slots = if quick { 1 << 12 } else { 1 << 14 };
    let mut t = Table::new(
        "Figure 12 — Query success rate vs load factor",
        &["α", "N=1", "N=2", "N=4", "N=8"],
    );
    for alpha in [0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut row = vec![format!("{alpha:.1}")];
        for n in [1u32, 2, 4, 8] {
            let mc = simulate_keywrite(slots, n, 32, alpha, trials, 42 + n as u64);
            row.push(fmt_pct(mc.success_rate()));
        }
        t.row(&row);
    }
    t
}

/// Figure 13: data longevity — queryability vs age for various store sizes.
pub fn figure13(quick: bool) -> Table {
    // Paper: 1/3/5/10/30 GiB stores, ages up to 100M newer flows, 24B slots
    // (20B path + 4B csum). Scale by 4096: slot counts and ages shrink
    // together, preserving α = age / slots.
    const SCALE: u64 = 4096;
    let trials = if quick { 300 } else { 1_500 };
    let gib = |g: u64| g * (1 << 30) / 24 / SCALE; // slots after scaling
    let mut t = Table::new(
        "Figure 13 — Queryability vs report age (N=2, 20B values, scaled /4096)",
        &["Age [#newer flows]", "1GiB", "3GiB", "5GiB", "10GiB", "30GiB"],
    );
    for age_m in [10u64, 20, 40, 60, 80, 100] {
        let age = age_m * 1_000_000 / SCALE;
        let mut row = vec![format!("{age_m}M")];
        for g in [1u64, 3, 5, 10, 30] {
            let rate = simulate_keywrite_aging(gib(g), 2, age, trials, 7 + g);
            row.push(fmt_pct(rate));
        }
        t.row(&row);
    }
    t
}

/// Figure 14: Postcarding throughput vs translator cache size and number of
/// interleaved flows, from the real aggregation cache.
pub fn figure14(quick: bool) -> Table {
    let nic = NicPerfModel::new(NicConfig::bluefield2());
    let peak_paths = nic.report_rate(postcard_wire_bytes(5), 1.0, 1.0);
    let inserts_per_run = if quick { 150_000 } else { 1_000_000 };
    let mut t = Table::new(
        "Figure 14 — Postcarding collection vs cache size (5-hop paths)",
        &["Cache slots", "0 intermediate", "100", "1K", "5K", "10K"],
    );
    for cache_slots in [8 * 1024usize, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024] {
        let mut row = vec![format!("{}K", cache_slots / 1024)];
        for intermediate in [0usize, 100, 1_000, 5_000, 10_000] {
            let rate = postcard_completeness(cache_slots, intermediate, inserts_per_run);
            row.push(fmt_rate(peak_paths * rate));
        }
        t.row(&row);
    }
    t
}

/// Fraction of flows whose 5 postcards aggregate without premature emission
/// when `intermediate` other flows are concurrently in flight ("The number
/// of other flows appearing at the translator while aggregating per-flow
/// postcards increases the risk of premature cache emission").
///
/// Model: `intermediate + 1` concurrent flows emit postcards round-robin
/// (each flow's 5 postcards are spread across 5 rounds); a completed flow is
/// immediately replaced by a fresh one. Completeness is measured from the
/// cache's own emission counters.
pub fn postcard_completeness(
    cache_slots: usize,
    intermediate: usize,
    target_inserts: usize,
) -> f64 {
    let mut cache = PostcardCache::new(cache_slots, 5);
    let concurrent = intermediate + 1;
    let mut flows: Vec<(u64, u8)> = (0..concurrent as u64).map(|i| (i, 0)).collect();
    let mut next_id = concurrent as u64;
    let mut inserts = 0usize;
    while inserts < target_inserts {
        for slot in flows.iter_mut() {
            let key = TelemetryKey::from_u64(slot.0);
            let _ = cache.insert(&key, slot.1, 5, slot.1 as u32);
            inserts += 1;
            slot.1 += 1;
            if slot.1 == 5 {
                *slot = (next_id, 0);
                next_id += 1;
            }
        }
    }
    let s = cache.stats;
    let total = s.complete_emissions + s.early_emissions;
    s.complete_emissions as f64 / total.max(1) as f64
}

/// Figure 15: Append throughput vs batch size and list size.
pub fn figure15() -> Table {
    let nic = NicPerfModel::new(NicConfig::bluefield2());
    let mut t = Table::new(
        "Figure 15 — Append collection vs batch size (4B events)",
        &["Batch", "64MiB lists [rps]", "2GiB lists [rps]"],
    );
    for batch in [1usize, 2, 4, 8, 16] {
        let rate = nic.report_rate(append_wire_bytes(batch, 4), batch as f64, 1.0);
        // List size does not affect collection speed ("The collection speed
        // is not impacted by the list sizes"): same value in both columns,
        // measured through the same model.
        t.row(&[batch.to_string(), fmt_rate(rate), fmt_rate(rate)]);
    }
    t
}

/// Figure 16: Append list-polling rate vs cores (16a) and poll breakdown
/// (16b), measured on the real reader.
pub fn figure16(quick: bool) -> Vec<Table> {
    let entries: u64 = if quick { 1 << 14 } else { 1 << 18 };
    let layout = AppendLayout { base_va: 0, lists: 1, entries_per_list: entries, entry_bytes: 4 };
    let max_cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(4);

    let mut rate_table = Table::new(
        "Figure 16a — Append polling rate vs cores",
        &["Cores", "No collection [polls/s]", "Active collection [polls/s]"],
    );
    for cores in [1usize, 2, 4, 8, 16] {
        if cores > max_cores {
            break;
        }
        // One list (and one reader) per core, as in the paper.
        let mut readers: Vec<AppendReader> = (0..cores)
            .map(|_| {
                let region =
                    MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
                AppendReader::new(layout, region)
            })
            .collect();
        let idle = parallel_append_poll(&mut readers, entries);

        // Active collection: a writer thread hammers the same regions while
        // readers poll.
        let regions: Vec<MemoryRegion> = (0..cores)
            .map(|_| MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE))
            .collect();
        let mut readers: Vec<AppendReader> =
            regions.iter().map(|r| AppendReader::new(layout, r.clone())).collect();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let active = std::thread::scope(|s| {
            s.spawn(|| {
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let region = &regions[(i % cores as u64) as usize];
                    let va = (i * 4) % (layout.region_len() - 4);
                    let _ = region.write(va, &(i as u32).to_be_bytes());
                    i += 1;
                }
            });
            let st = parallel_append_poll(&mut readers, entries);
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            st
        });
        rate_table.row(&[
            cores.to_string(),
            fmt_rate(idle.rate()),
            fmt_rate(active.rate()),
        ]);
    }

    let region = MemoryRegion::new(0, layout.region_len() as usize, 1, MrAccess::WRITE);
    let mut reader = AppendReader::new(layout, region);
    let mut bd = PollBreakdown::default();
    let polls = entries.min(100_000);
    for _ in 0..polls {
        reader.poll_with_breakdown(0, &mut bd);
    }
    let mut bd_table = Table::new(
        "Figure 16b — Per-poll execution breakdown",
        &["Component", "ns/poll"],
    );
    bd_table.row(&[
        "Increment Tail".to_string(),
        format!("{:.1}", bd.increment_tail_ns as f64 / polls as f64),
    ]);
    bd_table.row(&[
        "Retrieval".to_string(),
        format!("{:.1}", bd.retrieval_ns as f64 / polls as f64),
    ]);
    vec![rate_table, bd_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_rate_inversely_proportional_to_n() {
        let t = figure10();
        assert_eq!(t.len(), 4);
        let csv = t.to_csv();
        assert!(csv.contains("110.0M"), "N=1 must hit the message rate:\n{csv}");
    }

    #[test]
    fn figure12_success_falls_with_load_and_rises_with_n_at_low_load() {
        let t = figure12(true);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn figure14_completeness_falls_with_intermediate_flows() {
        let few = postcard_completeness(8 * 1024, 0, 30_000);
        let many = postcard_completeness(8 * 1024, 10_000, 60_000);
        assert!(few > 0.99, "no interference -> ~all complete, got {few}");
        assert!(many < few, "interference must hurt: {many} vs {few}");
    }

    #[test]
    fn figure14_bigger_cache_helps() {
        let small = postcard_completeness(1024, 5_000, 60_000);
        let big = postcard_completeness(128 * 1024, 5_000, 60_000);
        assert!(big > small, "cache size must help: {big} vs {small}");
    }

    #[test]
    fn figure15_batching_reaches_a_billion() {
        let csv = figure15().to_csv();
        let last = csv.lines().last().unwrap();
        assert!(last.starts_with("16,"));
        assert!(last.contains('B'), "batch 16 should exceed 1B rps: {last}");
    }

    #[test]
    fn figure11_and_16_run_quick() {
        let t11 = figure11(true);
        assert_eq!(t11.len(), 2);
        let t16 = figure16(true);
        assert_eq!(t16.len(), 2);
    }
}

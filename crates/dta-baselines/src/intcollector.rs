//! An INTCollector-style collector.
//!
//! INTCollector (CNSM'18) splits INT processing into a fast path (per-packet
//! event detection: report only when a metric changes materially) and a slow
//! path (periodic flushes of per-flow state to a time-series database —
//! InfluxDB in the original). It is "to the best of our knowledge the only
//! open source INT collector" (§6.1).

use std::collections::HashMap;

use dta_core::FlowTuple;

/// Per-flow INT state kept by the fast path.
#[derive(Debug, Clone, Copy)]
struct FlowState {
    last_value: u32,
    last_flush_ns: u64,
    pending: u32,
}

/// A point exported to the backing TSDB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsdbPoint {
    /// Export timestamp.
    pub ts_ns: u64,
    /// Flow the metric belongs to.
    pub flow: FlowTuple,
    /// Metric value.
    pub value: u32,
}

/// The INTCollector pipeline: event detection + periodic TSDB flush.
pub struct IntCollector {
    /// Relative change that triggers an event (fast-path filter).
    pub event_threshold: f64,
    /// Periodic flush interval.
    pub flush_interval_ns: u64,
    state: HashMap<FlowTuple, FlowState>,
    /// The "TSDB": flushed points, queryable per flow.
    tsdb: HashMap<FlowTuple, Vec<TsdbPoint>>,
    /// Reports seen.
    pub reports: u64,
    /// Events (threshold crossings) detected.
    pub events: u64,
}

impl IntCollector {
    /// Collector with the given event threshold and flush interval.
    pub fn new(event_threshold: f64, flush_interval_ns: u64) -> Self {
        assert!(flush_interval_ns > 0);
        IntCollector {
            event_threshold,
            flush_interval_ns,
            state: HashMap::new(),
            tsdb: HashMap::new(),
            reports: 0,
            events: 0,
        }
    }

    /// Ingest one INT report.
    pub fn ingest(&mut self, ts_ns: u64, flow: FlowTuple, value: u32) {
        self.reports += 1;
        let st = self.state.entry(flow).or_insert(FlowState {
            last_value: value,
            last_flush_ns: ts_ns,
            pending: value,
        });
        st.pending = value;
        // Event detection: material relative change in the metric.
        let base = st.last_value.max(1) as f64;
        let delta = (value as f64 - st.last_value as f64).abs() / base;
        let event = delta > self.event_threshold;
        if event {
            self.events += 1;
        }
        // Flush on event or on the periodic timer (the slow path).
        if event || ts_ns.saturating_sub(st.last_flush_ns) >= self.flush_interval_ns {
            let point = TsdbPoint { ts_ns, flow, value };
            st.last_value = value;
            st.last_flush_ns = ts_ns;
            self.tsdb.entry(flow).or_default().push(point);
        }
    }

    /// Points flushed for a flow.
    pub fn query(&self, flow: &FlowTuple) -> &[TsdbPoint] {
        self.tsdb.get(flow).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Total TSDB points (the collector's write amplification measure).
    pub fn tsdb_points(&self) -> usize {
        self.tsdb.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowTuple {
        FlowTuple::tcp(1, 1, 2, 2)
    }

    #[test]
    fn stable_metric_flushes_only_periodically() {
        let mut c = IntCollector::new(0.5, 1_000_000);
        for i in 0..100u64 {
            c.ingest(i * 1_000, flow(), 500); // constant value, 1us apart
        }
        assert_eq!(c.events, 0);
        // 100us of constant samples with a 1ms flush interval: no flushes.
        assert_eq!(c.tsdb_points(), 0);
        // Crossing the interval flushes once.
        c.ingest(2_000_000, flow(), 500);
        assert_eq!(c.tsdb_points(), 1);
    }

    #[test]
    fn spike_triggers_immediate_event() {
        let mut c = IntCollector::new(0.5, u64::MAX / 2);
        c.ingest(0, flow(), 100);
        c.ingest(1, flow(), 100);
        assert_eq!(c.events, 0);
        c.ingest(2, flow(), 1000); // 10x spike
        assert_eq!(c.events, 1);
        assert_eq!(c.query(&flow()).len(), 1);
        assert_eq!(c.query(&flow())[0].value, 1000);
    }

    #[test]
    fn event_filtering_reduces_tsdb_load() {
        let mut noisy = IntCollector::new(0.0, u64::MAX / 2); // everything is an event
        let mut filtered = IntCollector::new(0.9, u64::MAX / 2);
        for i in 0..1000u64 {
            let v = 100 + (i % 10) as u32; // small jitter
            noisy.ingest(i, flow(), v);
            filtered.ingest(i, flow(), v);
        }
        assert!(filtered.tsdb_points() * 10 < noisy.tsdb_points());
    }
}

//! The lightweight cuckoo-hash collector of §2.
//!
//! A bucketized cuckoo hash table (2 hash functions, 4-way buckets, BFS-free
//! random-walk eviction) storing the latest value per flow. Fast per report
//! but memory-bound: every lookup touches two random cache lines, and
//! evictions chain further — the behaviour behind Figure 2b's stall curve.

use dta_core::FlowTuple;

const BUCKET_WAYS: usize = 4;
const MAX_EVICTIONS: usize = 500;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    key: FlowTuple,
    value: u32,
}

/// A bucketized cuckoo hash table keyed by flow.
pub struct CuckooTable {
    buckets: Vec<[Option<Entry>; BUCKET_WAYS]>,
    /// Entries stored.
    pub len: u64,
    /// Evictions performed (each is an extra random memory access).
    pub evictions: u64,
    /// Inserts abandoned after the eviction limit (table effectively full).
    pub failures: u64,
    seed: u64,
}

impl CuckooTable {
    /// Table with `buckets` buckets (`4 * buckets` slots).
    pub fn new(buckets: usize) -> Self {
        assert!(buckets >= 2);
        CuckooTable {
            buckets: vec![[None; BUCKET_WAYS]; buckets],
            len: 0,
            evictions: 0,
            failures: 0,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn hash(&self, key: &FlowTuple, which: u8) -> usize {
        let enc = key.encode();
        let mut acc = self.seed ^ (which as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        for &b in &enc {
            acc = (acc ^ b as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
            acc ^= acc >> 29;
        }
        (acc % self.buckets.len() as u64) as usize
    }

    /// Insert or update `key` with `value`. Returns `false` when the insert
    /// failed after the eviction limit.
    pub fn insert(&mut self, key: FlowTuple, value: u32) -> bool {
        // Update in place if present.
        for which in 0..2u8 {
            let b = self.hash(&key, which);
            for e in self.buckets[b].iter_mut().flatten() {
                if e.key == key {
                    e.value = value;
                    return true;
                }
            }
        }
        // Insert with cuckoo eviction.
        let mut cur = Entry { key, value };
        let mut which = 0u8;
        for attempt in 0..MAX_EVICTIONS {
            let b = self.hash(&cur.key, which);
            for slot in self.buckets[b].iter_mut() {
                if slot.is_none() {
                    *slot = Some(cur);
                    self.len += 1;
                    return true;
                }
            }
            // Evict a pseudo-random way and retry with the other hash.
            let way = (self.seed as usize >> (attempt % 32)) % BUCKET_WAYS;
            let evicted = self.buckets[b][way].replace(cur).expect("bucket was full");
            cur = evicted;
            which ^= 1;
            self.evictions += 1;
        }
        self.failures += 1;
        false
    }

    /// Look up the latest value of `key`.
    pub fn get(&self, key: &FlowTuple) -> Option<u32> {
        for which in 0..2u8 {
            let b = self.hash(key, which);
            for e in self.buckets[b].iter().flatten() {
                if e.key == *key {
                    return Some(e.value);
                }
            }
        }
        None
    }

    /// Occupancy fraction.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / (self.buckets.len() * BUCKET_WAYS) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(i: u32) -> FlowTuple {
        FlowTuple::tcp(i, (i % 60000) as u16 + 1, i ^ 0xFFFF, 80)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = CuckooTable::new(64);
        for i in 0..100 {
            assert!(t.insert(flow(i), i * 10));
        }
        for i in 0..100 {
            assert_eq!(t.get(&flow(i)), Some(i * 10));
        }
        assert_eq!(t.get(&flow(1000)), None);
    }

    #[test]
    fn update_in_place_keeps_len() {
        let mut t = CuckooTable::new(16);
        t.insert(flow(1), 1);
        t.insert(flow(1), 2);
        assert_eq!(t.len, 1);
        assert_eq!(t.get(&flow(1)), Some(2));
    }

    #[test]
    fn high_load_triggers_evictions() {
        let mut t = CuckooTable::new(256);
        // Fill to ~90%.
        for i in 0..920 {
            t.insert(flow(i), i);
        }
        assert!(t.evictions > 0, "no evictions at 90% load");
        // Everything still retrievable.
        for i in 0..920 {
            if t.get(&flow(i)).is_none() {
                panic!("lost key {i} (failures={})", t.failures);
            }
        }
    }

    #[test]
    fn overfull_table_fails_gracefully() {
        let mut t = CuckooTable::new(4);
        let mut failures = 0;
        for i in 0..32 {
            if !t.insert(flow(i), i) {
                failures += 1;
            }
        }
        assert!(failures > 0);
        assert_eq!(failures, t.failures);
        assert!(t.load_factor() <= 1.0);
    }
}

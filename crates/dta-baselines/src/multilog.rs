//! A Confluo-style Atomic MultiLog.
//!
//! "Atomic MultiLog is the basic storage abstraction in Confluo, and it is
//! similar in interface to database tables" (§2). The ingestion path that
//! costs 72.8% of cycles in the paper's breakdown is reproduced here: an
//! append-only data log with atomic offset reservation, plus one hash index
//! per indexed attribute mapping attribute values to log offsets.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use dta_core::FlowTuple;

/// A parsed INT report as MultiLog ingests it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntRecord {
    /// Ingestion timestamp (ns).
    pub ts_ns: u64,
    /// The reporting flow.
    pub flow: FlowTuple,
    /// The 4-byte INT value.
    pub value: u32,
}

impl IntRecord {
    /// Serialized record width in the data log.
    pub const WIDTH: usize = 8 + FlowTuple::ENCODED_LEN + 4;

    /// Serialize for the data log.
    pub fn encode(&self) -> [u8; Self::WIDTH] {
        let mut out = [0u8; Self::WIDTH];
        out[0..8].copy_from_slice(&self.ts_ns.to_be_bytes());
        out[8..21].copy_from_slice(&self.flow.encode());
        out[21..25].copy_from_slice(&self.value.to_be_bytes());
        out
    }

    /// Deserialize from the data log.
    pub fn decode(buf: &[u8]) -> Self {
        IntRecord {
            ts_ns: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
            flow: FlowTuple::decode(buf[8..21].try_into().unwrap()),
            value: u32::from_be_bytes(buf[21..25].try_into().unwrap()),
        }
    }
}

/// The Atomic MultiLog: data log + attribute indexes.
pub struct AtomicMultiLog {
    /// The append-only data log.
    log: Vec<u8>,
    /// Atomically reserved write offset (Confluo's core primitive).
    write_offset: AtomicU64,
    /// Index: flow -> log offsets.
    flow_index: HashMap<FlowTuple, Vec<u64>>,
    /// Index: time bucket (ms) -> log offsets.
    time_index: HashMap<u64, Vec<u64>>,
    /// Records ingested.
    pub records: u64,
}

impl AtomicMultiLog {
    /// MultiLog with `capacity` pre-allocated record slots.
    pub fn new(capacity: usize) -> Self {
        AtomicMultiLog {
            log: vec![0u8; capacity * IntRecord::WIDTH],
            write_offset: AtomicU64::new(0),
            flow_index: HashMap::new(),
            time_index: HashMap::new(),
            records: 0,
        }
    }

    /// Ingest one record: reserve an offset atomically, write the record,
    /// update both indexes (the three cost components of Figure 2c).
    ///
    /// Returns `false` when the log is full.
    pub fn ingest(&mut self, rec: &IntRecord) -> bool {
        let off = self.write_offset.fetch_add(IntRecord::WIDTH as u64, Ordering::Relaxed);
        let end = off as usize + IntRecord::WIDTH;
        if end > self.log.len() {
            return false;
        }
        self.log[off as usize..end].copy_from_slice(&rec.encode());
        self.flow_index.entry(rec.flow).or_default().push(off);
        self.time_index.entry(rec.ts_ns / 1_000_000).or_default().push(off);
        self.records += 1;
        true
    }

    /// Query all records of a flow (offline analysis path).
    pub fn query_flow(&self, flow: &FlowTuple) -> Vec<IntRecord> {
        self.flow_index
            .get(flow)
            .map(|offs| {
                offs.iter()
                    .map(|&o| IntRecord::decode(&self.log[o as usize..o as usize + IntRecord::WIDTH]))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Query all records in a millisecond bucket (time-interval queries —
    /// the capability a bare hash table lacks, §2).
    pub fn query_time_ms(&self, ms: u64) -> Vec<IntRecord> {
        self.time_index
            .get(&ms)
            .map(|offs| {
                offs.iter()
                    .map(|&o| IntRecord::decode(&self.log[o as usize..o as usize + IntRecord::WIDTH]))
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, port: u16, v: u32) -> IntRecord {
        IntRecord { ts_ns: ts, flow: FlowTuple::tcp(1, port, 2, 80), value: v }
    }

    #[test]
    fn ingest_then_query_by_flow() {
        let mut ml = AtomicMultiLog::new(100);
        ml.ingest(&rec(0, 10, 1));
        ml.ingest(&rec(1, 10, 2));
        ml.ingest(&rec(2, 11, 3));
        let got = ml.query_flow(&FlowTuple::tcp(1, 10, 2, 80));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].value, 1);
        assert_eq!(got[1].value, 2);
    }

    #[test]
    fn time_interval_queries_work() {
        let mut ml = AtomicMultiLog::new(100);
        ml.ingest(&rec(500_000, 1, 1)); // 0ms bucket
        ml.ingest(&rec(1_500_000, 2, 2)); // 1ms bucket
        ml.ingest(&rec(1_700_000, 3, 3)); // 1ms bucket
        assert_eq!(ml.query_time_ms(0).len(), 1);
        assert_eq!(ml.query_time_ms(1).len(), 2);
        assert!(ml.query_time_ms(2).is_empty());
    }

    #[test]
    fn full_log_rejects() {
        let mut ml = AtomicMultiLog::new(2);
        assert!(ml.ingest(&rec(0, 1, 1)));
        assert!(ml.ingest(&rec(0, 2, 2)));
        assert!(!ml.ingest(&rec(0, 3, 3)));
        assert_eq!(ml.records, 2);
    }

    #[test]
    fn record_roundtrip() {
        let r = rec(0xABCD, 443, 0xDEAD_BEEF);
        assert_eq!(IntRecord::decode(&r.encode()), r);
    }
}

//! A BTrDB-style time-series store.
//!
//! BTrDB (FAST'16) organizes points in a time-partitioned tree whose
//! internal nodes keep statistical aggregates (min/max/mean/count) so range
//! queries at any resolution are O(log n). We reproduce the ingestion path:
//! points land in fixed-width time buckets at the leaves and every ancestor
//! aggregate updates on the way down — the "deeper insertion path" that
//! makes it the slowest Figure 7a baseline.

/// Statistical aggregate kept by internal nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Point count.
    pub count: u64,
    /// Minimum value.
    pub min: u32,
    /// Maximum value.
    pub max: u32,
    /// Sum (for mean).
    pub sum: u64,
}

impl Aggregate {
    fn empty() -> Self {
        Aggregate { count: 0, min: u32::MAX, max: 0, sum: 0 }
    }

    fn add(&mut self, v: u32) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u64;
    }

    /// Mean value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// One tree level: time-bucketed aggregates with bucket width `width_ns`.
#[derive(Debug)]
struct Level {
    width_ns: u64,
    buckets: std::collections::HashMap<u64, Aggregate>,
}

/// The time-partitioned tree (leaf points + `LEVELS` aggregate levels with
/// fan-out `FANOUT` between levels).
pub struct BTrDb {
    /// Leaf storage: (ts, value) points in arrival order per leaf bucket.
    leaves: std::collections::HashMap<u64, Vec<(u64, u32)>>,
    /// Leaf bucket width.
    leaf_width_ns: u64,
    levels: Vec<Level>,
    /// Points ingested.
    pub points: u64,
}

/// Fan-out between aggregation levels (BTrDB uses 64).
const FANOUT: u64 = 64;
/// Number of aggregate levels above the leaves.
const LEVELS: usize = 4;

impl BTrDb {
    /// Store with `leaf_width_ns`-wide leaf buckets.
    pub fn new(leaf_width_ns: u64) -> Self {
        assert!(leaf_width_ns > 0);
        let mut levels = Vec::with_capacity(LEVELS);
        let mut w = leaf_width_ns;
        for _ in 0..LEVELS {
            w *= FANOUT;
            levels.push(Level { width_ns: w, buckets: std::collections::HashMap::new() });
        }
        BTrDb { leaves: std::collections::HashMap::new(), leaf_width_ns, levels, points: 0 }
    }

    /// Ingest one `(ts, value)` point: leaf append + every level's
    /// aggregate update.
    pub fn ingest(&mut self, ts_ns: u64, value: u32) {
        self.leaves.entry(ts_ns / self.leaf_width_ns).or_default().push((ts_ns, value));
        for level in &mut self.levels {
            level
                .buckets
                .entry(ts_ns / level.width_ns)
                .or_insert_with(Aggregate::empty)
                .add(value);
        }
        self.points += 1;
    }

    /// Aggregate for the level-`level` bucket containing `ts_ns`
    /// (resolution halves... well, divides by FANOUT per level).
    pub fn aggregate_at(&self, level: usize, ts_ns: u64) -> Option<Aggregate> {
        let l = self.levels.get(level)?;
        l.buckets.get(&(ts_ns / l.width_ns)).copied()
    }

    /// Raw points in the leaf bucket containing `ts_ns`.
    pub fn leaf_points(&self, ts_ns: u64) -> &[(u64, u32)] {
        self.leaves
            .get(&(ts_ns / self.leaf_width_ns))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_track_all_levels() {
        let mut db = BTrDb::new(1_000);
        for i in 0..100u32 {
            db.ingest(i as u64 * 10, i);
        }
        // All 100 points are within one top-level bucket.
        let top = db.aggregate_at(LEVELS - 1, 0).expect("top aggregate");
        assert_eq!(top.count, 100);
        assert_eq!(top.min, 0);
        assert_eq!(top.max, 99);
        assert_eq!(top.mean(), Some(49.5));
    }

    #[test]
    fn leaf_buckets_partition_time() {
        let mut db = BTrDb::new(1_000);
        db.ingest(500, 1);
        db.ingest(1_500, 2);
        db.ingest(1_600, 3);
        assert_eq!(db.leaf_points(0).len(), 1);
        assert_eq!(db.leaf_points(1_200).len(), 2);
    }

    #[test]
    fn multi_resolution_counts_are_consistent() {
        let mut db = BTrDb::new(10);
        for i in 0..10_000u64 {
            db.ingest(i, (i % 97) as u32);
        }
        // Sum of level-0 bucket counts must equal the total.
        let l0_width = 10 * FANOUT;
        let mut total = 0;
        for b in 0..=(9_999 / l0_width) {
            if let Some(agg) = db.aggregate_at(0, b * l0_width) {
                total += agg.count;
            }
        }
        assert_eq!(total, 10_000);
    }

    #[test]
    fn empty_bucket_is_none() {
        let db = BTrDb::new(1_000);
        assert!(db.aggregate_at(0, 0).is_none());
        assert!(db.leaf_points(0).is_empty());
    }
}

//! CPU-based collector baselines.
//!
//! Section 2 of the paper motivates DTA by showing that software collectors
//! are either CPU-bound (Confluo's Atomic MultiLog: 72.8% of cycles in
//! indexing) or memory-bound (a cuckoo-hash collector: 42% of cycles stalled
//! at 20 cores). Section 6.1 compares DTA against MultiLog, BTrDB, and
//! INTCollector.
//!
//! This crate reimplements each collector's *ingestion path* as a real data
//! structure (reports are actually parsed and indexed) and pairs it with an
//! explicit cost model ([`cpu`]) calibrated so the published curves
//! (Figures 2, 3, 7a) re-emerge:
//!
//! * [`multilog`] — Confluo-style Atomic MultiLog: an append-only log with
//!   atomic offset reservation plus per-attribute hash indexes.
//! * [`cuckoo`] — a bucketized cuckoo hash table (2 hashes, 4-way buckets).
//! * [`btrdb`] — a BTrDB-style time-partitioned tree with internal
//!   aggregates.
//! * [`intcollector`] — INTCollector-style event detection with periodic
//!   flushes to a time-series store.
//! * [`cpu`] — the cycle/memory model: cores, frequency, a shared random-
//!   access memory budget, per-collector per-report costs, and the
//!   throughput / stall-fraction curves.

pub mod btrdb;
pub mod cpu;
pub mod cuckoo;
pub mod intcollector;
pub mod multilog;

pub use btrdb::BTrDb;
pub use cpu::{CollectorKind, CpuModel, CycleCost, ThroughputPoint};
pub use cuckoo::CuckooTable;
pub use intcollector::IntCollector;
pub use multilog::AtomicMultiLog;

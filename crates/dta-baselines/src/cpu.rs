//! The CPU/memory cost model behind Figures 2, 3, and 7a.
//!
//! Two resources bound a software collector:
//!
//! * **cycles** — each report costs I/O (DPDK burst receive), parsing
//!   (header extraction), and insertion (index update) cycles; a core
//!   processes at `freq / cycles` reports/s, and cores scale linearly.
//! * **random memory accesses** — the memory subsystem sustains a bounded
//!   rate of cache-missing accesses, *shared by all cores*. When aggregate
//!   demand exceeds it, cores stall (Figure 2b's "Mem-Stalled Cycles").
//!
//! Calibration targets (from the paper's testbed: 2×10-core Xeon Silver
//! 4114 @ 2.2 GHz): MultiLog ingests ~26M reports/s on 16 cores and scales
//! linearly (CPU-bound); Cuckoo scales linearly to ~11 cores then saturates
//! ~81M reports/s with ~42% stalled cycles at 20 cores (memory-bound).

use serde::{Deserialize, Serialize};

/// Per-report ingestion cost of one collector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleCost {
    /// Cycles receiving the packet (I/O).
    pub io_cycles: f64,
    /// Cycles extracting fields (parsing).
    pub parse_cycles: f64,
    /// Cycles updating the data structure (insertion / indexing).
    pub insert_cycles: f64,
    /// Memory instructions per report — the Figure 8 metric (all DMA/CPU
    /// memory touches, sequential included).
    pub mem_instructions: f64,
    /// Cache-missing (random) memory accesses per report — what contends
    /// for the shared memory budget.
    pub random_accesses: f64,
}

impl CycleCost {
    /// Total cycles per report.
    pub fn total_cycles(&self) -> f64 {
        self.io_cycles + self.parse_cycles + self.insert_cycles
    }

    /// Fraction of cycles spent inserting (Figure 2c's dominant bar).
    pub fn insert_fraction(&self) -> f64 {
        self.insert_cycles / self.total_cycles()
    }
}

/// The software collectors evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectorKind {
    /// Confluo's Atomic MultiLog (the state-of-the-art the paper beats).
    MultiLog,
    /// The lightweight cuckoo-hash collector of §2.
    Cuckoo,
    /// BTrDB time-series store.
    BTrDb,
    /// INTCollector (InfluxDB-backed INT collector).
    IntCollector,
}

impl CollectorKind {
    /// All kinds, in Figure 7a order.
    pub const ALL: [CollectorKind; 4] = [
        CollectorKind::BTrDb,
        CollectorKind::MultiLog,
        CollectorKind::IntCollector,
        CollectorKind::Cuckoo,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CollectorKind::MultiLog => "MultiLog",
            CollectorKind::Cuckoo => "Cuckoo",
            CollectorKind::BTrDb => "BTrDB",
            CollectorKind::IntCollector => "INTCollector",
        }
    }

    /// Calibrated per-report cost (see module docs).
    pub fn cost(self) -> CycleCost {
        match self {
            // 1340 cycles/report, 13.6% I/O, 13.6% parse, 72.8% insert
            // (Figure 2c's split), 343 memory instructions (Figure 8), but
            // mostly sequential log writes: few random accesses.
            CollectorKind::MultiLog => CycleCost {
                io_cycles: 1340.0 * 0.136,
                parse_cycles: 1340.0 * 0.136,
                insert_cycles: 1340.0 * 0.728,
                mem_instructions: 343.0,
                random_accesses: 2.0,
            },
            // 300 cycles/report (29.1% I/O, 36.9% parse, 34.0% insert per
            // Figure 2c), 6 memory touches of which most are cache misses:
            // hashing two random buckets + occasional eviction chain.
            CollectorKind::Cuckoo => CycleCost {
                io_cycles: 300.0 * 0.291,
                parse_cycles: 300.0 * 0.369,
                insert_cycles: 300.0 * 0.340,
                mem_instructions: 6.0,
                random_accesses: 6.0,
            },
            // Copy-on-write time-tree: deeper insertion path than MultiLog.
            CollectorKind::BTrDb => CycleCost {
                io_cycles: 180.0,
                parse_cycles: 180.0,
                insert_cycles: 1640.0,
                mem_instructions: 410.0,
                random_accesses: 8.0,
            },
            // Event detection is cheap but periodic TSDB flushes are not.
            CollectorKind::IntCollector => CycleCost {
                io_cycles: 180.0,
                parse_cycles: 220.0,
                insert_cycles: 1200.0,
                mem_instructions: 290.0,
                random_accesses: 4.0,
            },
        }
    }
}

/// The collector server's CPU/memory resources.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CpuModel {
    /// Core frequency in Hz.
    pub freq_hz: f64,
    /// Shared random-access budget of the memory subsystem, accesses/s.
    pub mem_random_per_sec: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        // Xeon Silver 4114 @ 2.2GHz, 2 channels DDR4-2666: ~485M sustained
        // random accesses/s (calibrated to Cuckoo's 11-core saturation).
        CpuModel { freq_hz: 2.2e9, mem_random_per_sec: 4.85e8 }
    }
}

/// One point of a throughput-vs-cores curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// Core count.
    pub cores: u32,
    /// Reports ingested per second.
    pub reports_per_sec: f64,
    /// Fraction of cycles stalled on memory.
    pub stalled_fraction: f64,
}

impl CpuModel {
    /// Unconstrained (CPU-only) rate for `cores` cores.
    pub fn cpu_rate(&self, kind: CollectorKind, cores: u32) -> f64 {
        cores as f64 * self.freq_hz / kind.cost().total_cycles()
    }

    /// Memory-bound ceiling.
    pub fn memory_rate(&self, kind: CollectorKind) -> f64 {
        self.mem_random_per_sec / kind.cost().random_accesses
    }

    /// Achieved rate and stall fraction at `cores` (Figure 2a/2b model).
    pub fn throughput(&self, kind: CollectorKind, cores: u32) -> ThroughputPoint {
        let cpu = self.cpu_rate(kind, cores);
        let mem = self.memory_rate(kind);
        let achieved = cpu.min(mem);
        // A small baseline stall (cold misses) even when CPU-bound; once the
        // budget saturates, every unserviced access shows up as stall.
        let baseline = 0.06;
        let stalled = if cpu <= mem {
            baseline + 0.04 * (cpu / mem)
        } else {
            (1.0 - mem / cpu).max(baseline)
        };
        ThroughputPoint { cores, reports_per_sec: achieved, stalled_fraction: stalled }
    }

    /// Sweep a core range (Figure 2's x-axis).
    pub fn sweep(&self, kind: CollectorKind, cores: impl IntoIterator<Item = u32>) -> Vec<ThroughputPoint> {
        cores.into_iter().map(|c| self.throughput(kind, c)).collect()
    }

    /// Cores needed on a *single server* to ingest `reports_per_sec`.
    /// `None` when the collector is memory-bound below the target no matter
    /// how many cores are added.
    pub fn cores_needed(&self, kind: CollectorKind, reports_per_sec: f64) -> Option<u64> {
        if reports_per_sec > self.memory_rate(kind) {
            return None;
        }
        let per_core = self.freq_hz / kind.cost().total_cycles();
        Some((reports_per_sec / per_core).ceil() as u64)
    }

    /// Cores needed across a sharded collector fleet (Figure 3's y-axis):
    /// collection partitions over servers of `cores_per_server` cores, so
    /// each server's memory budget is private and CPU cost is what scales.
    /// `None` when even a fully-dedicated server is memory-bound below its
    /// own CPU rate (collection cannot shard finer than one server).
    pub fn cores_needed_sharded(
        &self,
        kind: CollectorKind,
        reports_per_sec: f64,
        cores_per_server: u32,
    ) -> Option<u64> {
        let per_server_cpu = self.cpu_rate(kind, cores_per_server);
        if per_server_cpu > self.memory_rate(kind) {
            return None; // a full server stalls before its cores saturate
        }
        let per_core = self.freq_hz / kind.cost().total_cycles();
        Some((reports_per_sec / per_core).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multilog_is_cpu_bound_and_linear() {
        let m = CpuModel::default();
        let t8 = m.throughput(CollectorKind::MultiLog, 8);
        let t16 = m.throughput(CollectorKind::MultiLog, 16);
        assert!((t16.reports_per_sec / t8.reports_per_sec - 2.0).abs() < 1e-6);
        // ~26M reports/s at 16 cores — the Figure 7a baseline.
        assert!((t16.reports_per_sec - 26.3e6).abs() / 26.3e6 < 0.02);
        assert!(t16.stalled_fraction < 0.15, "MultiLog must not stall");
    }

    #[test]
    fn cuckoo_saturates_around_11_cores() {
        let m = CpuModel::default();
        let t10 = m.throughput(CollectorKind::Cuckoo, 10);
        let t11 = m.throughput(CollectorKind::Cuckoo, 11);
        let t20 = m.throughput(CollectorKind::Cuckoo, 20);
        // Linear up to ~11 cores...
        assert!(t10.reports_per_sec < m.memory_rate(CollectorKind::Cuckoo));
        // ...then flat.
        assert!((t20.reports_per_sec - t11.reports_per_sec).abs() / t11.reports_per_sec < 0.02);
        // ~42% stalled at 20 cores (Figure 2b).
        assert!(
            (t20.stalled_fraction - 0.42).abs() < 0.05,
            "stall at 20 cores = {}",
            t20.stalled_fraction
        );
    }

    #[test]
    fn cuckoo_outpaces_multilog_per_core() {
        let m = CpuModel::default();
        assert!(
            m.cpu_rate(CollectorKind::Cuckoo, 1) > 3.0 * m.cpu_rate(CollectorKind::MultiLog, 1)
        );
    }

    #[test]
    fn multilog_insertion_dominates() {
        // Figure 2c: 72.8% of MultiLog cycles go to insertion.
        let c = CollectorKind::MultiLog.cost();
        assert!((c.insert_fraction() - 0.728).abs() < 1e-9);
    }

    #[test]
    fn figure3_scale_thousand_switches_needs_thousands_of_cores() {
        // §2: "for networks comprising around a thousand switches, we would
        // need to dedicate nearly 10K cores" (INT 0.5% => 19M rps/switch).
        let m = CpuModel::default();
        let per_switch = 19e6;
        let cores = m
            .cores_needed_sharded(CollectorKind::MultiLog, per_switch * 1000.0, 16)
            .expect("MultiLog is CPU-bound per server");
        assert!(
            (9_000..=13_000).contains(&cores),
            "1000 switches -> {cores} cores (expected ~10K)"
        );
    }

    #[test]
    fn memory_bound_target_unreachable() {
        let m = CpuModel::default();
        let mem_ceiling = m.memory_rate(CollectorKind::Cuckoo);
        assert!(m.cores_needed(CollectorKind::Cuckoo, mem_ceiling * 1.01).is_none());
    }

    #[test]
    fn figure7a_speedups() {
        // DTA vs the 16-core MultiLog baseline: KW >= 4x, Postcarding ~16x,
        // Append ~41x (§1, Figure 7a).
        let m = CpuModel::default();
        let baseline = m.throughput(CollectorKind::MultiLog, 16).reports_per_sec;
        let kw = 110e6;
        let postcarding = 452.5e6;
        let append = 1.07e9;
        assert!(kw / baseline >= 4.0);
        assert!((postcarding / baseline - 16.0).abs() < 2.0);
        assert!((append / baseline - 41.0).abs() < 3.0);
    }
}

//! The live-rebalance test suite (release gate).
//!
//! PR 6's failover suite proved the fleet *survives* churn: after a kill,
//! the merged survivor memory equals the no-failure twin. But a rejoin
//! leaves the healed collector's key range scattered — writes that landed
//! on the fallback during the fault window stay there, queries fan out,
//! and the per-collector views never match a run that had no failure. This
//! suite proves the rebalance subsystem finishes the job: after
//! kill → rejoin → epoch-fenced migration, **every collector's memory is
//! byte-identical to the same-seed no-failure twin — including the
//! Key-Increment/CMS region** — in both translator modes, under live
//! concurrent write load, and under loss/reorder/duplication injected on
//! the migration path itself.
//!
//! The claims, as executable checks:
//!
//! 1. **Repatriation** — the rebalance preset (kill at 12us, rejoin at
//!    28us, fence at 36us, emission live to ~52us) releases in both
//!    modes and leaves per-collector bytes equal to the twin's.
//! 2. **Accounting** — the migration ledger closes exactly in every run:
//!    `scanned == transferred + skipped + resident`, even when a starved
//!    ledger abandons entries mid-flight or the fence evicts them.
//! 3. **Fault tolerance** — dice on the migration wire (drop, duplicate,
//!    pairwise reorder) are healed by the stable-PSN go-back-N transport:
//!    same final bytes, same release.
//! 4. **Query locality** — a released rebalance pins `fanout_lookups` to
//!    zero: every key answers at its routed primary again (a rejoin
//!    *without* a rebalance demonstrably does not).
//! 5. **Membership purity** — the `FAILOVER_SALT` redistribution is a
//!    pure function of the alive-set: event history and epoch bumps
//!    cannot move keys between survivors.
//! 6. **Idempotence** — duplicate Kill/Rejoin signals for the same
//!    collector are counted no-ops in both fleet node types.

use dta_collector::{CollectorService, ServiceConfig};
use dta_net::{NetNode, NodeId, SimTime};
use dta_sim::{
    run_scenario, CollectorPlan, ScenarioOutcome, ScenarioSpec, TranslatorMode, TRANSLATOR_IP,
};
use dta_translator::{
    CollectorRoutingTable, FleetConfig, FleetEvent, FleetShardedNode, FleetTranslatorNode,
    MigrationFaults, ShardedConfig,
};
use proptest::prelude::*;

const BOTH_MODES: [TranslatorMode; 2] =
    [TranslatorMode::SingleThreaded, TranslatorMode::Sharded { shards: 4 }];

/// The rebalance preset (kill 1 of 3 at 12us, rejoin 28us, fence 36us) at
/// a pinned seed.
fn rebalance(mode: TranslatorMode, seed: u64) -> ScenarioSpec {
    ScenarioSpec { seed, ..ScenarioSpec::rebalance(mode) }
}

/// The same deployment and workload with the fault schedule — and with it
/// the rebalance plan — removed.
fn no_fault_twin(spec: &ScenarioSpec) -> ScenarioSpec {
    ScenarioSpec {
        collectors: CollectorPlan { fault: None, ..spec.collectors },
        rebalance: None,
        ..spec.clone()
    }
}

/// Assert the run released and its migration accounting closed.
fn assert_released_and_closed(out: &ScenarioOutcome, ctx: &str) {
    let rb = out.report.rebalance.expect("rebalance stats missing");
    assert_eq!(rb.released, 1, "{ctx}: rebalance never released: {rb:?}");
    assert!(rb.closes(), "{ctx}: migration ledger leaked: {rb:?}");
    assert_eq!(rb.resident, 0, "{ctx}: entries still in flight at finish");
}

#[test]
fn rebalance_restores_per_collector_bytes_to_no_failure_twin() {
    for mode in BOTH_MODES {
        let spec = rebalance(mode, 0x4EBA_0001);
        let twin = no_fault_twin(&spec);
        let a = run_scenario(&spec);
        let b = run_scenario(&twin);
        let rb = a.report.rebalance.expect("rebalance stats missing");
        let f = &a.report.failover;

        // The full epoch sequence ran: kill (1), rejoin (2), fence (3),
        // release (4).
        assert_eq!(f.failovers, 1, "{mode:?}");
        assert_eq!(f.rejoins, 1, "{mode:?}");
        assert_eq!(rb.fence_epoch, 3, "{mode:?}: fence bump out of sequence");
        assert_eq!(rb.release_epoch, 4, "{mode:?}: release bump out of sequence");
        assert_eq!(f.epoch, 4, "{mode:?}");
        assert_released_and_closed(&a, "rebalance run");

        // The migration did real work against real concurrent load: keys
        // were fenced and transferred while reporters were still emitting.
        assert!(rb.scanned > 0, "{mode:?}: nothing was ever fenced");
        assert!(rb.transferred > 0, "{mode:?}: nothing migrated back");
        assert!(rb.kw_fenced > 0 && rb.inc_fenced > 0, "{mode:?}: one primitive idle: {rb:?}");
        assert!(rb.ops_sent > 0 && rb.ops_completed > 0, "{mode:?}");

        // The twin never assembled the machinery.
        assert_eq!(b.report.rebalance, None);
        assert_eq!(b.report.failover.epoch, 0);

        // The tentpole claim: *per-collector* memory — every region,
        // including the CMS counters the failover suite had to exclude —
        // is byte-identical to the run that never had the failure.
        assert_eq!(a.report.sent, b.report.sent, "{mode:?}: twins diverged at the workload");
        assert_eq!(a.report.reports_unsent, 0, "{mode:?}");
        assert_eq!(a.fleet_memory.len(), 3);
        for (c, (got, want)) in a.fleet_memory.iter().zip(&b.fleet_memory).enumerate() {
            assert_eq!(
                got, want,
                "{mode:?}: collector {c} memory != no-failure twin after release"
            );
        }
        assert_eq!(a.memory, b.memory, "{mode:?}: merged memory diverged");

        // Query locality is restored: the audit answers every key at its
        // primary without a single fan-out probe, and agrees with the twin.
        assert_eq!(a.report.queries, b.report.queries, "{mode:?}: audit diverged");
        assert_eq!(
            a.report.queries.fanout_lookups, 0,
            "{mode:?}: a released rebalance left scattered state"
        );
        assert_eq!(a.report.queries.kw_missing, 0, "{mode:?}");
        assert_eq!(a.report.queries.kw_ambiguous, 0, "{mode:?}");
    }
}

#[test]
fn rebalance_runs_are_bit_reproducible_in_both_modes() {
    for mode in BOTH_MODES {
        for seed in [0x4EBA_0002u64, 0x4EBA_0003] {
            let spec = rebalance(mode, seed);
            let a = run_scenario(&spec);
            let b = run_scenario(&spec);
            assert_eq!(a.report, b.report, "{mode:?}/{seed:#x}: report not reproducible");
            assert_eq!(
                a.fleet_memory, b.fleet_memory,
                "{mode:?}/{seed:#x}: per-collector memory not reproducible"
            );
        }
    }
}

/// Satellite: the `fanout_lookups` audit counter measures something real —
/// a rejoin *without* a rebalance leaves keys stranded on the fallback,
/// and the audit has to fan out to find them.
#[test]
fn rejoin_without_rebalance_leaves_fanout_lookups() {
    let mut spec = rebalance(TranslatorMode::SingleThreaded, 0x4EBA_0004);
    spec.rebalance = None;
    let out = run_scenario(&spec);
    assert_eq!(out.report.rebalance, None);
    assert_eq!(out.report.failover.rejoins, 1);
    assert!(
        out.report.queries.fanout_lookups > 0,
        "rejoin-only run answered every key at its primary — the rebalance \
         suite's zero-fanout assertion would be vacuous"
    );
}

/// Starve the migration ledger (2 in-flight entries against a fence of
/// hundreds): entries must be abandoned, counted, and leave the closure
/// identity intact — bounded memory degrades loudly, never silently.
#[test]
fn migration_ledger_eviction_is_accounted_not_silent() {
    for mode in BOTH_MODES {
        let mut spec = rebalance(mode, 0x4EBA_0005);
        spec.rebalance.as_mut().unwrap().ledger_capacity = 2;
        let a = run_scenario(&spec);
        let rb = a.report.rebalance.expect("rebalance stats missing");
        assert!(rb.abandoned > 0, "{mode:?}: starved ledger never abandoned an entry");
        assert!(rb.skipped >= rb.abandoned, "{mode:?}");
        assert_released_and_closed(&a, "starved-ledger run");
        let b = run_scenario(&spec);
        assert_eq!(a.report, b.report, "{mode:?}: starved run not reproducible");
        assert_eq!(a.fleet_memory, b.fleet_memory);
    }
}

/// Same for the fence: a tiny active-entry bound evicts (counted), the
/// deferred live reports behind evicted entries are flushed back into the
/// report path (never dropped), and accounting still closes.
#[test]
fn fence_eviction_is_accounted_not_silent() {
    for mode in BOTH_MODES {
        let mut spec = rebalance(mode, 0x4EBA_0006);
        spec.rebalance.as_mut().unwrap().fence_capacity = 8;
        let a = run_scenario(&spec);
        let rb = a.report.rebalance.expect("rebalance stats missing");
        assert!(rb.fence_evicted > 0, "{mode:?}: tiny fence never evicted");
        assert_released_and_closed(&a, "starved-fence run");
        assert_eq!(a.report.reports_unsent, 0, "{mode:?}");
        let b = run_scenario(&spec);
        assert_eq!(a.report, b.report, "{mode:?}: evicting run not reproducible");
    }
}

/// Dice on the migration wire: drops starve completions until the retry
/// timer refires, duplicates hit the responder's PSN window, reorders
/// trigger NAK-driven go-back-N. The transport must heal all of it — the
/// final per-collector bytes still equal the no-failure twin's.
#[test]
fn migration_path_faults_are_healed_by_retransmission() {
    for mode in BOTH_MODES {
        let mut spec = rebalance(mode, 0x4EBA_0007);
        spec.rebalance.as_mut().unwrap().faults =
            MigrationFaults { drop_chance: 0.15, duplicate_chance: 0.10, reorder_chance: 0.10 };
        let twin = no_fault_twin(&spec);
        let a = run_scenario(&spec);
        let b = run_scenario(&twin);
        let rb = a.report.rebalance.expect("rebalance stats missing");

        // The dice really fired, and the transport really worked for it.
        assert!(rb.injected_drops > 0, "{mode:?}: no drop injected: {rb:?}");
        assert!(rb.injected_dups > 0, "{mode:?}: no duplicate injected");
        assert!(rb.injected_reorders > 0, "{mode:?}: no reorder injected");
        assert!(rb.retransmits > 0, "{mode:?}: faults healed without a single resend?");
        assert_released_and_closed(&a, "faulted-migration run");

        // And none of it is visible in the outcome.
        for (c, (got, want)) in a.fleet_memory.iter().zip(&b.fleet_memory).enumerate() {
            assert_eq!(
                got, want,
                "{mode:?}: collector {c} diverged under migration-path faults"
            );
        }
        assert_eq!(a.report.queries, b.report.queries, "{mode:?}");
        assert_eq!(a.report.queries.fanout_lookups, 0, "{mode:?}");
        let c = run_scenario(&spec);
        assert_eq!(a.report, c.report, "{mode:?}: faulted run not reproducible");
        assert_eq!(a.fleet_memory, c.fleet_memory);
    }
}

/// Satellite: the failover-salt redistribution is a pure function of the
/// alive-set — neither the event history that produced the membership nor
/// epoch bumps (the fence and release use them) can move a key between
/// survivors. If this ever broke, a rebalance would migrate keys to owners
/// the live routing no longer agrees with.
#[test]
fn failover_salt_redistribution_is_pure_function_of_membership() {
    // Two very different histories arriving at the same alive-set
    // {0, 2, 3}: a straight kill, versus a kill/rejoin churn storm.
    let mut direct = CollectorRoutingTable::new(4);
    direct.mark_dead(1);
    let mut churned = CollectorRoutingTable::new(4);
    churned.mark_dead(3);
    churned.mark_dead(1);
    churned.mark_alive(3);
    churned.mark_alive(1);
    churned.mark_dead(1);
    assert_ne!(direct.epoch(), churned.epoch(), "histories should differ in epoch");
    for csum in 0..40_000u32 {
        assert_eq!(
            direct.owner_checksum(csum),
            churned.owner_checksum(csum),
            "owner of {csum:#x} depends on history, not membership"
        );
    }
    // Epoch bumps without membership change (the fence and release bumps)
    // are routing-invariant.
    let before: Vec<u32> = (0..40_000u32).map(|c| direct.owner_checksum(c)).collect();
    direct.bump_epoch();
    direct.bump_epoch();
    let after: Vec<u32> = (0..40_000u32).map(|c| direct.owner_checksum(c)).collect();
    assert_eq!(before, after, "an epoch bump moved keys");
}

fn fleet_services() -> Vec<CollectorService> {
    (0..3).map(|_| CollectorService::new(ServiceConfig::default())).collect()
}

/// Satellite: duplicate Kill/Rejoin signals for the same collector in the
/// same epoch are idempotent no-ops, visible in `duplicate_events` — the
/// wire-driving fleet node.
#[test]
fn duplicate_fleet_events_are_noops_in_the_translator_node() {
    let mut services = fleet_services();
    let mut peers: Vec<(NodeId, u32, &mut CollectorService)> = services
        .iter_mut()
        .enumerate()
        .map(|(c, svc)| (NodeId(100 + c as u32), 0x0A00_0900 + c as u32, svc))
        .collect();
    let (mut node, admin) = FleetTranslatorNode::connect(
        &FleetConfig {
            translator: Default::default(),
            timeout_ns: 8_000,
            min_unacked: 24,
            ledger_capacity: 64,
            rebalance: None,
        },
        &mut peers,
        NodeId(1),
        TRANSLATOR_IP,
    );
    for _ in 0..2 {
        admin.signal(FleetEvent::ForceFailover { collector: 1 });
    }
    for _ in 0..2 {
        admin.signal(FleetEvent::Rejoin { collector: 1 });
    }
    let mut out = Vec::new();
    node.tick(SimTime::from_nanos(1_000), &mut out);
    let rep = node.finish();
    assert_eq!(rep.failover.failovers, 1, "second kill re-fired the failover");
    assert_eq!(rep.failover.rejoins, 1, "second rejoin re-admitted twice");
    assert_eq!(rep.failover.duplicate_events, 2, "duplicates must be counted");
    assert_eq!(rep.table.epoch(), 2, "duplicate events bumped the epoch");
}

/// Same claim for the in-process sharded fleet node.
#[test]
fn duplicate_fleet_events_are_noops_in_the_sharded_node() {
    let mut services = fleet_services();
    let mut peers: Vec<(NodeId, u32, &mut CollectorService)> = services
        .iter_mut()
        .enumerate()
        .map(|(c, svc)| (NodeId(100 + c as u32), 0x0A00_0900 + c as u32, svc))
        .collect();
    let (mut node, admin) =
        FleetShardedNode::connect(&ShardedConfig::default(), 64, None, &mut peers);
    for _ in 0..2 {
        admin.signal(FleetEvent::Teardown { collector: 2 });
    }
    for _ in 0..2 {
        admin.signal(FleetEvent::Rejoin { collector: 2 });
    }
    let mut out = Vec::new();
    node.tick(SimTime::from_nanos(1_000), &mut out);
    let rep = node.finish().expect("pipelines not yet finished");
    assert_eq!(rep.failover.failovers, 1, "second teardown re-fired the failover");
    assert_eq!(rep.failover.rejoins, 1, "second rejoin re-admitted twice");
    assert_eq!(rep.failover.duplicate_events, 2, "duplicates must be counted");
    assert_eq!(rep.table.epoch(), 2, "duplicate events bumped the epoch");
}

proptest! {
    /// Repatriation is not a property of the pinned timeline: across
    /// random seeds, victims, and kill/rejoin/fence times, the released
    /// fleet's per-collector memory — CMS region included — equals the
    /// same-seed no-failure twin in both translator modes, the migration
    /// accounting closes, the audit needs no fan-out, and the runs are
    /// bit-reproducible.
    #[test]
    fn rebalance_converges_for_any_seed_victim_and_schedule(
        seed in any::<u64>(),
        victim in 0u32..3,
        kill_at in 6_000u64..18_000,
        rejoin_delta in 16_000u64..24_000,
        fence_delta in 2_000u64..10_000,
        sharded in any::<bool>(),
    ) {
        let mode = if sharded {
            TranslatorMode::Sharded { shards: 4 }
        } else {
            TranslatorMode::SingleThreaded
        };
        let mut spec = rebalance(mode, seed);
        {
            let fault = spec.collectors.fault.as_mut().unwrap();
            fault.victim = victim;
            fault.kill_at_ns = kill_at;
            fault.rejoin_at_ns = Some(kill_at + rejoin_delta);
            spec.rebalance.as_mut().unwrap().start_at_ns = kill_at + rejoin_delta + fence_delta;
        }
        let twin = no_fault_twin(&spec);
        let a = run_scenario(&spec);
        let b = run_scenario(&twin);
        let rb = a.report.rebalance.expect("rebalance stats missing");
        prop_assert_eq!(rb.released, 1, "never released: {:?}", rb);
        prop_assert!(rb.closes(), "migration accounting leaked: {:?}", rb);
        prop_assert_eq!(a.report.failover.rejoins, 1);
        prop_assert!(
            a.fleet_memory == b.fleet_memory,
            "per-collector memory != no-failure twin"
        );
        prop_assert_eq!(&a.report.queries, &b.report.queries, "audit diverged");
        prop_assert_eq!(a.report.queries.fanout_lookups, 0u64);
        let c = run_scenario(&spec);
        prop_assert!(a.fleet_memory == c.fleet_memory, "run not reproducible");
        prop_assert_eq!(&a.report, &c.report);
    }
}

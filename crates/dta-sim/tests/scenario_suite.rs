//! The scenario test suite.
//!
//! Three claims the harness turns from prose into executable checks:
//!
//! 1. **Bit-reproducibility** — a seeded scenario produces an identical
//!    [`ScenarioReport`] and identical collector memory on every run, in
//!    both translator modes.
//! 2. **K=4 fat-tree convergence** — with a clean fabric, every report a
//!    multi-pod fleet emits lands and every written key/flow/list queries
//!    back from the collector.
//! 3. **Fault equivalence** — under the same seeded loss+reorder+duplicate
//!    schedule on the report path, the single-threaded translator and the
//!    N-shard pipeline leave byte-identical collector memory: the paper's
//!    best-effort primitives don't care *which* pipeline fronts the
//!    collector, only *what* the network delivered.

use dta_sim::{load_file, run_scenario, FaultPlan, ScenarioSpec, TrafficMix, TranslatorMode};
use proptest::prelude::*;

/// A modest K=4 deployment; small enough that the proptest's repeated
/// builds stay fast, large enough that every pod contributes reporters.
/// `scenarios/fault_equivalence.toml` is this spec plus the 10% fault
/// schedule — `suite_cell_spec` pulls the seeded variants from there, so
/// the corpus (not this function) is the source of truth for the seeded
/// bit-repro tests.
fn base_spec() -> ScenarioSpec {
    ScenarioSpec {
        fat_tree_k: 4,
        reporters: 8,
        ops_per_reporter: 16,
        traffic: TrafficMix { slot_disjoint_keys: true, ..TrafficMix::default() },
        ..ScenarioSpec::default()
    }
}

/// Load one cell of the suite's corpus file by coordinate id.
fn suite_cell_spec(cell_id: &str) -> ScenarioSpec {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios/fault_equivalence.toml");
    let doc = load_file(&path).expect("suite corpus file must parse and validate");
    doc.cells()
        .into_iter()
        .find(|c| c.id() == cell_id)
        .unwrap_or_else(|| panic!("fault_equivalence.toml: no cell [{cell_id}]"))
        .spec
}

#[test]
fn seeded_single_threaded_scenario_is_bit_reproducible() {
    let spec = suite_cell_spec("seed=3617587201,mode=single"); // 0xD7A0_0001
    assert_eq!(
        spec,
        ScenarioSpec {
            faults: FaultPlan::unreliable_report_path(0.1, 0.1, 0.1),
            seed: 0xD7A0_0001,
            ..base_spec()
        },
        "corpus cell drifted from the suite's deployment"
    );
    let a = run_scenario(&spec);
    let b = run_scenario(&spec);
    assert_eq!(a.report, b.report, "report must be a pure function of the spec");
    assert_eq!(a.memory, b.memory, "collector memory must be bit-identical");
    // And the seed matters: a different schedule is actually different.
    let c = run_scenario(&ScenarioSpec { seed: 0xD7A0_0002, ..spec });
    assert_ne!(a.report, c.report);
}

#[test]
fn seeded_sharded_scenario_is_bit_reproducible() {
    let spec = suite_cell_spec("seed=3617587203,mode=sharded4"); // 0xD7A0_0003
    assert_eq!(spec.mode, TranslatorMode::Sharded { shards: 4 });
    let a = run_scenario(&spec);
    let b = run_scenario(&spec);
    assert_eq!(
        a.report, b.report,
        "sharded report must not leak thread-scheduling artifacts"
    );
    assert_eq!(a.memory, b.memory);
    assert_eq!(a.report.per_shard_reports_in.len(), 4);
}

#[test]
fn k4_fat_tree_multi_reporter_convergence() {
    // Every host except the collector's reports; fabric is clean.
    let spec = ScenarioSpec {
        reporters: 15,
        ops_per_reporter: 24,
        seed: 0xC04E_0001,
        ..base_spec()
    };
    let outcome = run_scenario(&spec);
    let r = &outcome.report;
    assert_eq!(r.reports_unsent, 0, "emission window must cover the schedule");
    assert_eq!(r.net.dropped, 0, "clean fabric must not drop");
    assert_eq!(r.faults, dta_net::FaultTotals::default(), "no injectors attached");
    assert_eq!(
        r.translator_node.dta_in,
        r.sent.total(),
        "every framed report must reach the translator"
    );
    assert_eq!(r.translator.reports_in, r.sent.total());
    // Query audit: everything written is queryable.
    assert_eq!(r.queries.kw_missing, 0, "no Key-Write key may vanish");
    assert_eq!(r.queries.kw_ambiguous, 0);
    assert!(r.queries.kw_found > 0);
    assert_eq!(r.queries.pc_missing, 0, "every full flow must decode");
    assert_eq!(r.queries.append_entries, r.sent.append);
    assert!(r.queries.inc_estimate_total > 0);
    assert!(r.executed > 0);
}

#[test]
fn sharded_k4_convergence_matches_send_counts() {
    let spec = ScenarioSpec {
        reporters: 15,
        ops_per_reporter: 24,
        mode: TranslatorMode::Sharded { shards: 4 },
        seed: 0xC04E_0002,
        ..base_spec()
    };
    let outcome = run_scenario(&spec);
    let r = &outcome.report;
    assert_eq!(r.reports_unsent, 0);
    assert_eq!(r.translator.reports_in, r.sent.total());
    assert_eq!(r.queries.kw_missing, 0);
    assert_eq!(r.queries.append_entries, r.sent.append);
    assert!(
        r.per_shard_reports_in.iter().all(|&n| n > 0),
        "all shards must take load: {:?}",
        r.per_shard_reports_in
    );
    // The RDMA hop is intra-rack in sharded mode: nothing crossed the wire.
    assert_eq!(r.collector.executed, 0);
    assert!(r.executed > 0);
}

/// K=8, 1008 paced reporters (8 lanes on each of 127 hosts), single mode:
/// the fleet drains, every report crosses the fabric, and the collector
/// answers for all of it. `large_` tests are the CI K=8 smoke step.
#[test]
fn large_k8_single_converges() {
    let spec = ScenarioSpec { seed: 0x1A26_0001, ..ScenarioSpec::large(TranslatorMode::SingleThreaded) };
    let outcome = run_scenario(&spec);
    let r = &outcome.report;
    assert_eq!(r.reports_unsent, 0, "emission window must cover the schedule");
    assert_eq!(r.net.dropped, 0, "clean fabric must not drop");
    assert_eq!(r.translator_node.dta_in, r.sent.total());
    assert_eq!(r.translator.reports_in, r.sent.total());
    assert!(r.sent.total() > 5_000, "a 1008-reporter fleet must emit at scale");
    assert_eq!(r.queries.kw_missing, 0);
    assert_eq!(r.queries.kw_ambiguous, 0);
    assert_eq!(r.queries.pc_missing, 0, "every full flow must decode");
    assert!(r.queries.append_entries > 0);
    assert!(r.executed > 0);
}

/// Same fleet through the sharded pipeline; also pins bit-reproducibility
/// at scale (two runs, identical report + collector bytes).
#[test]
fn large_k8_sharded_is_bit_reproducible() {
    let spec = ScenarioSpec {
        mode: TranslatorMode::Sharded { shards: 4 },
        seed: 0x1A26_0002,
        ..ScenarioSpec::large(TranslatorMode::SingleThreaded)
    };
    let a = run_scenario(&spec);
    assert_eq!(a.report.reports_unsent, 0);
    assert_eq!(a.report.translator.reports_in, a.report.sent.total());
    assert_eq!(a.report.per_shard_reports_in.len(), 4);
    assert!(
        a.report.per_shard_reports_in.iter().all(|&n| n > 0),
        "all shards must take load: {:?}",
        a.report.per_shard_reports_in
    );
    assert_eq!(a.report.queries.kw_missing, 0);
    let b = run_scenario(&spec);
    assert_eq!(a.report, b.report, "K=8 sharded report must be a pure function of the spec");
    assert_eq!(a.memory, b.memory, "K=8 collector memory must be bit-identical");
}

/// A lossy, reordering, duplicating report path at K=8 scale: loss shows
/// up in the fault totals and the surviving reports still audit cleanly.
#[test]
fn large_k8_faulted_report_path_accounts_for_loss() {
    let spec = ScenarioSpec {
        faults: FaultPlan::unreliable_report_path(0.05, 0.05, 0.05),
        seed: 0x1A26_0003,
        ..ScenarioSpec::large(TranslatorMode::SingleThreaded)
    };
    let outcome = run_scenario(&spec);
    let r = &outcome.report;
    assert_eq!(r.reports_unsent, 0);
    assert!(r.faults.dropped > 0, "a 5% lossy path must lose something at this scale");
    assert!(r.faults.duplicated > 0);
    assert!(r.translator.reports_in > 0);
    assert!(
        r.translator.reports_in as i64 - r.sent.total() as i64
            != 0,
        "loss and duplication must not exactly cancel at 13k reports (seed-pinned)"
    );
}

proptest! {
    /// The acceptance property: identical fault schedules (loss + reorder
    /// + duplication on the report path of a K=4 fat tree) leave the
    /// single-threaded and N-shard translators with byte-identical
    /// collector memory.
    #[test]
    fn fault_equivalence_single_vs_sharded(
        seed in any::<u64>(),
        drop_pct in 0u32..25,
        reorder_pct in 0u32..25,
        dup_pct in 0u32..25,
        wide in any::<bool>(),
        ops in 6u32..20,
    ) {
        let faults = FaultPlan::unreliable_report_path(
            drop_pct as f64 / 100.0,
            reorder_pct as f64 / 100.0,
            dup_pct as f64 / 100.0,
        );
        let spec = ScenarioSpec {
            ops_per_reporter: ops,
            faults,
            seed,
            ..base_spec()
        };
        let single = run_scenario(&spec);
        let shards = if wide { 4 } else { 2 };
        let sharded = run_scenario(&ScenarioSpec {
            mode: TranslatorMode::Sharded { shards },
            ..spec
        });
        // Both pipelines saw the same delivered stream...
        prop_assert_eq!(
            single.report.translator.reports_in,
            sharded.report.translator.reports_in,
            "fault schedule diverged between modes"
        );
        prop_assert_eq!(&single.report.sent, &sharded.report.sent);
        // ...and left the same bytes behind.
        prop_assert_eq!(single.memory.len(), sharded.memory.len());
        for ((rkey_a, bytes_a), (rkey_b, bytes_b)) in
            single.memory.iter().zip(&sharded.memory)
        {
            prop_assert_eq!(rkey_a, rkey_b);
            prop_assert!(
                bytes_a == bytes_b,
                "collector memory diverged at {} shards (rkey {:#x}): first diff at byte {:?}",
                shards,
                rkey_a,
                bytes_a.iter().zip(bytes_b.iter()).position(|(a, b)| a != b)
            );
        }
    }
}

//! The collector-failover test suite (release gate).
//!
//! The failover claim, in the same self-stabilization frame as the PR 5
//! congestion suite: after a fail-stop collector fault, the surviving
//! fleet's *merged* memory is byte-identical to a same-seed run that never
//! had the failure, in both translator modes — and every in-flight report
//! is accounted for (the translator's replay ledger closes exactly).
//!
//! Five claims turned into executable checks:
//!
//! 1. **Convergence** — kill 1 of 3 collectors mid-emission; the
//!    translator detects the fail-stop (completion timeout single-threaded,
//!    CM teardown sharded), re-routes the dead key range to the survivors,
//!    and replays the un-acked window. The merged survivor memory and the
//!    query audit equal the no-failure twin, byte for byte.
//! 2. **Accounting** — the in-flight ledger closes in every run:
//!    `recorded == evicted + replayed + nak_replayed + resident`. With the
//!    default capacity nothing evicts, so no replay is ever silently lost.
//! 3. **Replay idempotence** — a *spurious* failover (the translator is
//!    told a healthy collector died) re-applies even acknowledged writes
//!    at the new owner. Write-once Key-Write and slot-disjoint
//!    Key-Increment make the double-application invisible everywhere
//!    queries look: INC totals and KW bytes match the no-failover twin.
//! 4. **Rejoin** — a healed collector re-enters at a bumped table epoch
//!    and takes its key range back; the run stays bit-reproducible and the
//!    write-once KW region still merges to the twin's bytes (CMS sums are
//!    split across the fault windows by design, so only the idempotent
//!    region carries the equality through a rejoin).
//! 5. **Reproducibility** — every fault schedule above is a pure function
//!    of the spec: same seed, same report, same per-collector bytes.

use dta_sim::{
    run_scenario, CollectorFaultPlan, CollectorPlan, ScenarioOutcome, ScenarioSpec, TranslatorMode,
};
use proptest::prelude::*;

/// Key-Write region rkey (write-once — the idempotent region).
const RKEY_KW: u32 = 0x10;

const BOTH_MODES: [TranslatorMode; 2] =
    [TranslatorMode::SingleThreaded, TranslatorMode::Sharded { shards: 4 }];

/// The failover preset (kill collector 1 of 3 at 12us) at a pinned seed.
fn failover(mode: TranslatorMode, seed: u64) -> ScenarioSpec {
    ScenarioSpec { seed, ..ScenarioSpec::failover(mode) }
}

/// The same deployment and workload with the fault schedule removed.
fn no_fault_twin(spec: &ScenarioSpec) -> ScenarioSpec {
    ScenarioSpec {
        collectors: CollectorPlan { fault: None, ..spec.collectors },
        ..spec.clone()
    }
}

/// Assert the translator-side in-flight ledger closed exactly and nothing
/// was evicted (capacity evictions would make replay lossy).
fn assert_ledger_airtight(out: &ScenarioOutcome, ctx: &str) {
    let f = &out.report.failover;
    assert!(f.ledger_closes(), "{ctx}: ledger leaked: {f:?}");
    assert_eq!(f.ledger_evicted, 0, "{ctx}: capacity evictions lost replay window");
}

#[test]
fn killed_collector_converges_to_no_failure_memory() {
    for mode in BOTH_MODES {
        let spec = failover(mode, 0xFA17_0001);
        let twin = no_fault_twin(&spec);
        let a = run_scenario(&spec);
        let b = run_scenario(&twin);
        let f = &a.report.failover;

        // The fail-stop really happened and was detected through the
        // deployment's own signal: RDMA completion timeout when the
        // translator drives the wire, CM teardown when the sharded
        // pipelines execute in-process.
        assert_eq!(f.failovers, 1, "{mode:?}: expected exactly one failover");
        assert_eq!(f.spurious, 0);
        assert_eq!(f.rejoins, 0);
        match mode {
            TranslatorMode::SingleThreaded => {
                assert_eq!(f.detected_timeout, 1, "{mode:?}: timeout detection missed");
                assert_eq!(f.detected_teardown, 0);
            }
            TranslatorMode::Sharded { .. } => {
                assert_eq!(f.detected_teardown, 1, "{mode:?}: teardown detection missed");
                assert_eq!(f.detected_timeout, 0);
            }
        }
        assert_eq!(f.epoch, 1, "{mode:?}: one membership change = epoch 1");

        // The victim's key range went somewhere: traffic re-routed after
        // the epoch bump, and the un-acked window replayed.
        assert!(f.rerouted > 0, "{mode:?}: no report ever took the fallback route");
        assert!(
            f.replayed + f.replayed_acked + f.nak_replayed > 0,
            "{mode:?}: nothing replayed — kill landed outside the in-flight window"
        );
        assert!(f.ledger_recorded > 0);
        assert_ledger_airtight(&a, "kill run");

        // The twin saw none of the machinery fire.
        assert_eq!(b.report.failover.failovers, 0);
        assert_eq!(b.report.failover.rerouted, 0);
        assert_eq!(b.report.failover.epoch, 0);

        // Convergence: merged survivor memory is byte-identical to the
        // same seed's no-failure merged memory, and the audit (routed by
        // each run's *own* final table) agrees.
        assert_eq!(a.report.sent, b.report.sent, "{mode:?}: twins diverged at the workload");
        assert_eq!(a.report.reports_unsent, 0);
        assert_eq!(
            a.report.queries, b.report.queries,
            "{mode:?}: query audit diverged from no-failure twin"
        );
        assert_eq!(a.report.queries.kw_missing, 0, "{mode:?}: a Key-Write vanished in failover");
        assert_eq!(
            a.memory, b.memory,
            "{mode:?}: merged survivor memory != no-failure memory"
        );
        // Unmerged views exist for the whole fleet, and the victim's is
        // genuinely different from the twin's (its mid-window range moved).
        assert_eq!(a.fleet_memory.len(), 3);
        assert_eq!(b.fleet_memory.len(), 3);
        assert_ne!(
            a.fleet_memory[1], b.fleet_memory[1],
            "{mode:?}: victim memory unchanged — the kill was a no-op"
        );
    }
}

#[test]
fn failover_runs_are_bit_reproducible_in_both_modes() {
    for mode in BOTH_MODES {
        for seed in [0xFA17_0002u64, 0xFA17_0003, 0xFA17_0004] {
            let spec = failover(mode, seed);
            let a = run_scenario(&spec);
            let b = run_scenario(&spec);
            assert_eq!(a.report, b.report, "{mode:?}/{seed:#x}: report not reproducible");
            assert_eq!(a.memory, b.memory, "{mode:?}/{seed:#x}: merged memory not reproducible");
            assert_eq!(
                a.fleet_memory, b.fleet_memory,
                "{mode:?}/{seed:#x}: per-collector memory not reproducible"
            );
        }
    }
}

/// Satellite: replay idempotence. A spurious failover replays writes the
/// collector already executed and acknowledged — the write-once KW slots
/// and slot-disjoint CMS counters must absorb the re-application without
/// any query-visible double effect.
#[test]
fn spurious_failover_replay_does_not_double_apply() {
    for mode in BOTH_MODES {
        let mut spec = failover(mode, 0xFA17_0005);
        spec.collectors.fault = Some(CollectorFaultPlan {
            spurious: true,
            ..CollectorFaultPlan::kill(1, 12_000)
        });
        let twin = no_fault_twin(&spec);
        let a = run_scenario(&spec);
        let b = run_scenario(&twin);
        let f = &a.report.failover;

        assert_eq!(f.failovers, 1, "{mode:?}: spurious failover never fired");
        assert_eq!(f.spurious, 1);
        // No real death signal: neither detector may claim credit.
        assert_eq!(f.detected_timeout, 0, "{mode:?}");
        assert_eq!(f.detected_teardown, 0, "{mode:?}");
        // The definition of the hazard: acknowledged writes were replayed.
        assert!(
            f.replayed_acked > 0,
            "{mode:?}: no acked entry replayed — the idempotence claim went untested"
        );
        assert_ledger_airtight(&a, "spurious run");

        // Idempotence, observed everywhere queries look: the CMS estimate
        // total (a double-applied INC would inflate it), the KW audit (a
        // torn or duplicated KW would go ambiguous/missing), and the raw
        // merged bytes.
        assert_eq!(
            a.report.queries.inc_estimate_total, b.report.queries.inc_estimate_total,
            "{mode:?}: Key-Increment totals drifted — replay double-applied"
        );
        assert_eq!(a.report.queries, b.report.queries, "{mode:?}: audit diverged");
        assert_eq!(
            a.memory, b.memory,
            "{mode:?}: merged memory != twin after spurious replay"
        );

        // Pure function of the spec, like every other schedule.
        let c = run_scenario(&spec);
        assert_eq!(a.report, c.report, "{mode:?}: spurious run not reproducible");
        assert_eq!(a.memory, c.memory);
    }
}

/// A rejoin-capable variant of the preset: a longer emission window and a
/// tighter detection timeout, so the fleet detects the kill, re-routes,
/// re-admits the victim at ~32us, and still has emissions left to route
/// back to it on the restored primary paths.
fn rejoin_spec(seed: u64) -> ScenarioSpec {
    let mut spec = failover(TranslatorMode::SingleThreaded, seed);
    spec.ops_per_reporter = 96;
    spec.collectors.timeout_ns = 8_000;
    spec.collectors.fault = Some(CollectorFaultPlan {
        rejoin_at_ns: Some(32_000),
        ..CollectorFaultPlan::kill(1, 12_000)
    });
    spec
}

#[test]
fn rejoin_readmits_the_victim_at_a_bumped_epoch() {
    let spec = rejoin_spec(0xFA17_0006);
    let a = run_scenario(&spec);
    let f = &a.report.failover;

    assert_eq!(f.failovers, 1, "kill never detected before the rejoin");
    assert_eq!(f.detected_timeout, 1);
    assert_eq!(f.rejoins, 1, "victim never re-admitted");
    assert_eq!(f.epoch, 2, "kill + rejoin = two membership changes");
    assert!(f.rerouted > 0, "no traffic ever used the fallback window");
    assert!(a.report.failover.ledger_closes(), "rejoin run leaked ledger entries");

    // Bit-reproducible, like every schedule.
    let b = run_scenario(&spec);
    assert_eq!(a.report, b.report, "rejoin run not reproducible");
    assert_eq!(a.memory, b.memory);
    assert_eq!(a.fleet_memory, b.fleet_memory);

    // The idempotent (write-once KW) region still converges to the twin:
    // wherever a key's single write landed — victim before the kill,
    // survivor during the fault window, victim again after rejoin — it
    // occupies the same slot offset, so the merged OR is invariant. The
    // CMS region is deliberately NOT compared: a rejoin splits each key's
    // increment stream across two collectors, and a sum split across nodes
    // does not OR back into the twin's single sum.
    let twin = run_scenario(&no_fault_twin(&spec));
    let kw = |out: &ScenarioOutcome| {
        out.memory.iter().find(|(rkey, _)| *rkey == RKEY_KW).expect("KW region").1.clone()
    };
    assert_eq!(
        kw(&a),
        kw(&twin),
        "write-once KW region failed to merge back to the no-failure bytes"
    );
    assert_eq!(a.report.queries.kw_found, twin.report.queries.kw_found);
    assert_eq!(a.report.queries.kw_ambiguous, 0, "replay tore a write-once slot");
    assert_eq!(a.report.queries.kw_missing, 0);
}

/// Starve the ledger (capacity 8 per collector against a ~100-report
/// window): evictions must happen, be counted, and leave the closure
/// identity intact — bounded memory degrades loudly, never silently.
#[test]
fn ledger_eviction_is_accounted_not_silent() {
    for mode in BOTH_MODES {
        let mut spec = failover(mode, 0xFA17_0007);
        spec.collectors.ledger_capacity = 8;
        let a = run_scenario(&spec);
        let f = &a.report.failover;
        assert_eq!(f.failovers, 1, "{mode:?}");
        assert!(f.ledger_evicted > 0, "{mode:?}: tiny ledger never evicted");
        assert!(f.ledger_closes(), "{mode:?}: eviction broke the closure identity: {f:?}");
        // Still a pure function of the spec.
        let b = run_scenario(&spec);
        assert_eq!(a.report, b.report, "{mode:?}: evicting run not reproducible");
        assert_eq!(a.memory, b.memory);
    }
}

/// Mode equivalence of the fleet itself (no fault): routing a workload
/// across 3 collectors through the single-threaded wire path and through
/// the sharded in-process path lands the same merged bytes — the fleet
/// extension of the scenario suite's fault-equivalence property.
#[test]
fn fleet_modes_agree_on_merged_memory_without_faults() {
    let single = run_scenario(&no_fault_twin(&failover(TranslatorMode::SingleThreaded, 0xFA17_0008)));
    let sharded =
        run_scenario(&no_fault_twin(&failover(TranslatorMode::Sharded { shards: 4 }, 0xFA17_0008)));
    assert_eq!(single.report.sent, sharded.report.sent);
    assert_eq!(single.report.queries, sharded.report.queries, "audits diverged across modes");
    assert_eq!(single.memory, sharded.memory, "fleet memory diverged across modes");
    assert_eq!(single.fleet_memory, sharded.fleet_memory, "per-collector bytes diverged");
    // Fleet plumbing sanity: reports really spread over all 3 collectors.
    for (c, mem) in single.fleet_memory.iter().enumerate() {
        let wrote = mem.iter().any(|(_, bytes)| bytes.iter().any(|b| *b != 0));
        assert!(wrote, "collector {c} never executed a write");
    }
}

proptest! {
    /// Convergence is not a property of the pinned seed or the pinned
    /// victim: across random seeds, victims, and kill times inside the
    /// emission window, the killed fleet's merged memory and audit equal
    /// the same-seed no-failure twin in both translator modes, the ledger
    /// closes, and the runs are bit-reproducible.
    #[test]
    fn killed_fleet_converges_for_any_seed_victim_and_kill_time(
        seed in any::<u64>(),
        victim in 0u32..3,
        kill_at in 6_000u64..22_000,
        sharded in any::<bool>(),
    ) {
        let mode = if sharded {
            TranslatorMode::Sharded { shards: 4 }
        } else {
            TranslatorMode::SingleThreaded
        };
        let mut spec = failover(mode, seed);
        spec.collectors.fault = Some(CollectorFaultPlan::kill(victim, kill_at));
        let twin = no_fault_twin(&spec);
        let a = run_scenario(&spec);
        let b = run_scenario(&twin);
        let f = &a.report.failover;
        prop_assert_eq!(f.failovers, 1, "failover must fire: {:?}", f);
        prop_assert!(f.ledger_closes(), "ledger leaked: {:?}", f);
        prop_assert_eq!(f.ledger_evicted, 0u64);
        prop_assert_eq!(&a.report.queries, &b.report.queries, "audit diverged");
        prop_assert!(a.memory == b.memory, "merged memory != no-failure twin");
        let c = run_scenario(&spec);
        prop_assert!(a.memory == c.memory, "kill run not reproducible");
        prop_assert_eq!(&a.report, &c.report);
    }
}

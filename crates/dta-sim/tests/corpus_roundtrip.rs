//! Round-trip property: a random valid [`ScenarioSpec`], rendered to the
//! corpus file format and re-parsed, is *identical*. This pins
//! [`dta_sim::render_spec`] and the corpus parser against each other —
//! a plan field added to the spec but not to both sides shows up here as
//! a round-trip mismatch (or, for a renderer gap, as a default-valued
//! field diff), not as silent corpus drift.
//!
//! Specs are generated preset-first: one of the six valid presets, then
//! mutations across every section — including the `Option`-al plans
//! (rate limit, retransmit, collector fault, rebalance) that only some
//! presets carry — constrained to stay `validate()`-clean so the property
//! covers exactly the corpus the loader accepts.

use dta_sim::{parse_str, render_spec, ScenarioSpec, TranslatorMode};
use proptest::prelude::*;

proptest! {
    #[test]
    fn rendered_specs_reparse_identically(
        base in 0usize..6,
        seed in any::<u64>(),
        tick_ns in 1_000u64..10_000,
        drain_ns in 200_000u64..900_000,
        drop in 0.0f64..0.3,
        reorder in 0.0f64..0.3,
        duplicate in 0.0f64..0.3,
        size_limit in prop_oneof![(64usize..9000).prop_map(Some), Just(None)],
        kw_redundancy in 1u8..5,
        kw_keys in 1usize..4096,
        append_lists in 1u32..16,
        sharded in any::<bool>(),
        shards in 2usize..9,
        lossy in any::<bool>(),
        spurious in any::<bool>(),
        translator_rl in any::<bool>(),
        burst in 1u64..8192,
        mtu_sel in 0usize..3,
        query_rate in 1u32..64,
        query_seed in any::<u64>(),
        query_kw_weight in 1u32..100,
    ) {
        let mode = if sharded {
            TranslatorMode::Sharded { shards }
        } else {
            TranslatorMode::SingleThreaded
        };
        let mut spec = match base {
            0 => ScenarioSpec { mode, ..ScenarioSpec::default() },
            1 => ScenarioSpec::smoke(mode),
            2 => ScenarioSpec::congested(mode),
            3 => ScenarioSpec::failover(mode),
            4 => ScenarioSpec::rebalance(mode),
            _ => ScenarioSpec::query_under_load(mode),
        };
        spec.seed = seed;
        spec.tick_ns = tick_ns;
        spec.drain_ns = spec.drain_ns.max(drain_ns);
        // Report-path faults are valid in every mode; the RDMA hop is not,
        // so it stays at the preset's (clean) value.
        spec.faults.report_uplinks.drop_chance = drop;
        spec.faults.report_uplinks.duplicate_chance = duplicate;
        spec.faults.fabric.reorder_chance = reorder;
        spec.faults.fabric.size_limit = size_limit;
        spec.traffic.kw_redundancy = kw_redundancy;
        // kw_write_once presets need the pool to cover the whole schedule.
        let floor = if spec.traffic.kw_write_once {
            (spec.reporters * spec.ops_per_reporter) as usize
        } else {
            1
        };
        spec.traffic.kw_keys = kw_keys.max(floor);
        spec.traffic.append_lists = append_lists;
        if lossy {
            spec.congestion.rdma_link.discipline = dta_net::QueueDiscipline::Lossy;
        }
        // Spurious excludes rejoin; only the failover preset's fault plan
        // (kill, no rejoin) may take it.
        if let Some(f) = spec.collectors.fault.as_mut() {
            if f.rejoin_at_ns.is_none() {
                f.spurious = spurious;
            }
        }
        if translator_rl {
            let mut rl = dta_translator::RateLimiterConfig::bluefield2();
            rl.burst = burst;
            spec.translator.rate_limit = Some(rl);
        }
        spec.translator.mtu = [256, 1024, 4096][mtu_sel];
        // Key-Write traffic is nonzero in every preset, so a Key-Write
        // mix weight is always valid to mutate.
        if let Some(q) = spec.query.as_mut() {
            q.rate = query_rate;
            q.seed = query_seed;
            q.mix.key_write = query_kw_weight;
        }

        prop_assert!(
            spec.validate().is_ok(),
            "generator must only emit valid specs: {:?}",
            spec.validate()
        );
        let text = render_spec(&spec);
        let doc = match parse_str("roundtrip.toml", &text) {
            Ok(doc) => doc,
            Err(e) => return Err(format!("rendered spec failed to parse: {e}\n{text}")),
        };
        prop_assert_eq!(doc.spec, spec, "render -> parse round-trip diverged");
    }
}

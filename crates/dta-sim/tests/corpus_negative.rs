//! Negative-parse table: one malformed fixture per rule, each asserting
//! the error names the offending file and key/section — a corpus typo
//! must fail loudly and legibly, never silently half-apply.
//!
//! Fixtures live under `tests/fixtures/invalid/`; the table below is
//! exhaustive over that directory (a stray fixture with no expectation,
//! or vice versa, fails the test).

use std::path::{Path, PathBuf};

use dta_sim::load_file;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/invalid")
}

/// `(fixture, substrings the error message must contain)`.
const EXPECTATIONS: &[(&str, &[&str])] = &[
    ("unknown_key.toml", &["unknown key", "traffic.keywrite"]),
    ("unknown_section.toml", &["unknown section", "[trafic]"]),
    ("bad_enum.toml", &["turbo", "mode"]),
    ("sharded_without_shards.toml", &["sharded", "shards"]),
    ("type_mismatch.toml", &["reporters", "integer", "string"]),
    ("rebalance_without_rejoin.toml", &["rebalance", "rejoin_at_ns"]),
    ("min_unacked_floor.toml", &["min_unacked"]),
    ("victim_axis_without_fault.toml", &["victim", "collectors.fault"]),
    ("cross_mode_without_axis.toml", &["cross_mode_memory_equal", "mode"]),
    ("invalid_sweep_cell.toml", &["mode=sharded4", "rdma_hop"]),
];

#[test]
fn every_invalid_fixture_fails_naming_the_offender() {
    for (fixture, needles) in EXPECTATIONS {
        let path = fixtures_dir().join(fixture);
        let err = match load_file(&path) {
            Err(e) => e,
            Ok(_) => panic!("{fixture}: expected a parse/validation error, got Ok"),
        };
        assert!(
            err.file.ends_with(fixture),
            "{fixture}: error must carry the offending file, got {:?}",
            err.file
        );
        let rendered = err.to_string();
        for needle in *needles {
            assert!(
                rendered.contains(needle),
                "{fixture}: error {rendered:?} does not name {needle:?}"
            );
        }
    }
}

/// The table is the directory: every fixture is expected, every
/// expectation exists.
#[test]
fn expectation_table_matches_the_fixture_directory() {
    let mut on_disk: Vec<String> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".toml"))
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = EXPECTATIONS.iter().map(|(f, _)| f.to_string()).collect();
    expected.sort();
    assert_eq!(on_disk, expected);
}

/// Syntax errors carry the exact line number.
#[test]
fn errors_carry_line_numbers() {
    let e = dta_sim::parse_str("inline.toml", "seed = 1\nbogus_key = 2\n").unwrap_err();
    assert_eq!((e.file.as_str(), e.line), ("inline.toml", 2));
    assert_eq!(e.to_string(), "inline.toml:2: unknown key `bogus_key`");
}

//! Online query serving under write load (release suite).
//!
//! Pins the [`dta_sim::QueryPlan`] contract end to end:
//!
//! * **Read-only**: a query-loaded run leaves collector memory
//!   byte-identical to a query-free twin of the same seed, in both
//!   translator modes — the stream reads pooled per-epoch snapshots, never
//!   the live region, so not one writer byte may move.
//! * **Bit-reproducible**: the [`dta_sim::QueryStats`] section (latency
//!   histogram, staleness, hit/miss/fan-out counts) is a pure function of
//!   the spec.
//! * **Live overlap**: the stream really runs during the write phase
//!   (epochs span the emission window) and really answers.
//! * **Fleet routing**: the same plan serves a 3-collector fleet through
//!   the owner-first engine.

#![cfg(not(debug_assertions))]

use dta_sim::{
    memory_fingerprint, run_scenario, CollectorPlan, ScenarioSpec, TranslatorMode,
};

const MODES: [TranslatorMode; 2] =
    [TranslatorMode::SingleThreaded, TranslatorMode::Sharded { shards: 4 }];

/// The query-free twin: same seed, same traffic, no `[query]` plan.
fn twin(spec: &ScenarioSpec) -> ScenarioSpec {
    ScenarioSpec { query: None, ..spec.clone() }
}

#[test]
fn query_stream_leaves_writer_memory_byte_identical() {
    for mode in MODES {
        let spec = ScenarioSpec::query_under_load(mode);
        let queried = run_scenario(&spec);
        let bare = run_scenario(&twin(&spec));

        let q = queried.report.query.as_ref().expect("query plan ran");
        assert!(q.answered > 0, "{mode:?}: stream answered nothing");

        assert_eq!(
            memory_fingerprint(&queried.memory),
            memory_fingerprint(&bare.memory),
            "{mode:?}: query stream perturbed collector memory"
        );
        assert_eq!(queried.memory.len(), bare.memory.len());
        for ((rk_a, buf_a), (rk_b, buf_b)) in queried.memory.iter().zip(&bare.memory) {
            assert_eq!(rk_a, rk_b);
            assert_eq!(buf_a.as_bytes(), buf_b.as_bytes(), "{mode:?}: region {rk_a} diverged");
        }

        // Everything but the query section matches the twin: serving
        // queries changes no writer-side counter.
        let mut stripped = queried.report.clone();
        stripped.query = None;
        assert_eq!(stripped, bare.report, "{mode:?}: query stream leaked into writer counters");
    }
}

#[test]
fn query_stats_are_bit_reproducible_and_live() {
    for mode in MODES {
        let spec = ScenarioSpec::query_under_load(mode);
        let a = run_scenario(&spec);
        let b = run_scenario(&spec);
        assert_eq!(a.report, b.report, "{mode:?}: report must be a pure function of the spec");

        let q = a.report.query.as_ref().expect("query plan ran");
        let plan = spec.query.unwrap();
        // The stream overlapped the write phase: one epoch per tick in
        // [start, stop), at `rate` issued queries each.
        assert!(q.epochs > 1, "{mode:?}: no live overlap ({} epochs)", q.epochs);
        assert_eq!(q.issued, q.epochs * plan.rate as u64);
        assert_eq!(q.issued, q.hits + q.misses);
        assert!(q.answered > 0 && q.hits > 0, "{mode:?}: {q:?}");
        // Every issued query got a latency sample, each at least the base
        // service cost.
        assert_eq!(q.latency.count, q.issued);
        assert!(q.latency.min_ns >= 80, "{mode:?}: {:?}", q.latency);
        assert!(q.latency.mean_ns() >= q.latency.min_ns);
        assert!(q.staleness_epochs_max >= q.staleness_epochs_total.div_ceil(q.issued.max(1)));
    }
}

#[test]
fn query_stream_serves_a_collector_fleet() {
    // Fleet-without-fault: three collectors, owner-first routing on the
    // epoch-0 table. KW + INC only (the fleet preconditions).
    let mut spec = ScenarioSpec::query_under_load(TranslatorMode::SingleThreaded);
    spec.traffic.append = 0;
    spec.traffic.postcarding = 0;
    let mix = &mut spec.query.as_mut().unwrap().mix;
    mix.append = 0;
    mix.postcarding = 0;
    spec.collectors = CollectorPlan { timeout_ns: 8_000, ..CollectorPlan::fleet(3) };
    spec.service.nic = spec.service.nic.with_ack_coalesce(8);
    spec.validate().expect("fleet query spec is valid");

    let a = run_scenario(&spec);
    let b = run_scenario(&spec);
    assert_eq!(a.report, b.report, "fleet query report must be reproducible");
    let q = a.report.query.as_ref().expect("query plan ran");
    assert!(q.answered > 0 && q.hits > 0, "fleet stream answered nothing: {q:?}");
    assert_eq!(a.fleet_memory.len(), 3);
}

//! Engine-rewrite equivalence goldens.
//!
//! These fingerprints were captured from the pre-arena (HashMap +
//! BinaryHeap) `dta-net` engine on the seed commit of PR 4, *before* the
//! dense-arena / timing-wheel rewrite. The rewrite must be behaviour-
//! preserving bit for bit: same event order (the wheel pops in the exact
//! `(time, seq)` order the heap did), same fault RNG draws, same stats.
//! A drift in any counter, query outcome, or collector byte fails here.
//!
//! If a *deliberate* behaviour change ever invalidates these, re-capture
//! with `cargo run --release -p dta-bench --example golden_capture` and
//! say so in the commit message.
//!
//! Schema note: when `ScenarioReport` gains a field, the Debug strings
//! here must be re-rendered — but every pre-existing counter value and
//! both memory fingerprints must stay identical (PR 5 added the all-zero
//! `reporter: RetxStats` block this way; congestion is opt-in and the
//! default `CongestionPlan` is a no-op. PR 6 likewise added the all-zero
//! `failover: FailoverStats` block; a single-collector run never touches
//! the fleet path). PR 7 added the `duplicate_events` counter, the
//! `rebalance: None` report section, and the `fanout_lookups` query
//! counter, all inert without a `RebalancePlan`. PR 8 added the
//! `query: None` report section — inert without a `QueryPlan`, and the
//! query stream reads per-epoch snapshots so even an enabled plan never
//! perturbs collector memory.

use dta_sim::{memory_fingerprint, run_scenario, FaultPlan, ScenarioSpec, TranslatorMode};

#[test]
fn k4_single_clean_matches_pre_rewrite_engine() {
    let spec = ScenarioSpec { seed: 0xD7A0_0001, ..ScenarioSpec::smoke(TranslatorMode::SingleThreaded) };
    let out = run_scenario(&spec);
    assert_eq!(
        format!("{:?}", out.report),
        "ScenarioReport { sent: PrimitiveCounts { key_write: 96, append: 74, key_increment: 46, postcard: 200 }, reports_unsent: 0, net: NetworkStats { delivered: 336, forwarded: 1232, dropped: 0, intercepted: 416 }, faults: FaultTotals { dropped: 0, corrupted: 0, reordered: 0, duplicated: 0 }, links: LinkStats { enqueued: 1984, dropped: 0, transmitted: 1984, bytes_tx: 143758, pauses: 0 }, translator: TranslatorStats { reports_in: 416, rdma_out: 332, rate_limited: 0, nacks_sent: 0, no_service: 0, resyncs: 0 }, translator_node: TranslatorNodeStats { dta_in: 416, malformed: 0, forwarded: 0, roce_responses: 4 }, reporter: RetxStats { nacks_received: 0, stray_received: 0, retransmitted: 0, retries_exhausted: 0, nacks_unmatched: 0 }, per_shard_reports_in: [], executed: 332, collector: CollectorNodeStats { executed: 332, naks: 0, dropped: 0 }, failover: FailoverStats { failovers: 0, spurious: 0, rejoins: 0, detected_timeout: 0, detected_teardown: 0, cm_disconnects: 0, rerouted: 0, replayed: 0, replayed_acked: 0, nak_replayed: 0, ledger_recorded: 0, ledger_evicted: 0, ledger_resident: 0, epoch: 0, duplicate_events: 0 }, rebalance: None, queries: QueryOutcomes { kw_found: 78, kw_ambiguous: 0, kw_missing: 0, pc_found: 40, pc_missing: 0, append_entries: 74, inc_estimate_total: 2562, fanout_lookups: 0 }, query: None }",
    );
    assert_eq!(memory_fingerprint(&out.memory), 0x62df9f446c793788);
}

#[test]
fn k4_single_faulted_matches_pre_rewrite_engine() {
    let spec = ScenarioSpec {
        faults: FaultPlan::unreliable_report_path(0.1, 0.1, 0.1),
        reporters: 8,
        ops_per_reporter: 16,
        seed: 0xD7A0_0002,
        ..ScenarioSpec::smoke(TranslatorMode::SingleThreaded)
    };
    let out = run_scenario(&spec);
    assert_eq!(
        format!("{:?}", out.report),
        "ScenarioReport { sent: PrimitiveCounts { key_write: 52, append: 29, key_increment: 30, postcard: 85 }, reports_unsent: 0, net: NetworkStats { delivered: 191, forwarded: 639, dropped: 91, intercepted: 203 }, faults: FaultTotals { dropped: 91, corrupted: 0, reordered: 56, duplicated: 98 }, links: LinkStats { enqueued: 1033, dropped: 0, transmitted: 1033, bytes_tx: 75532, pauses: 0 }, translator: TranslatorStats { reports_in: 203, rdma_out: 190, rate_limited: 0, nacks_sent: 0, no_service: 0, resyncs: 0 }, translator_node: TranslatorNodeStats { dta_in: 203, malformed: 0, forwarded: 0, roce_responses: 1 }, reporter: RetxStats { nacks_received: 0, stray_received: 0, retransmitted: 0, retries_exhausted: 0, nacks_unmatched: 0 }, per_shard_reports_in: [], executed: 190, collector: CollectorNodeStats { executed: 190, naks: 0, dropped: 0 }, failover: FailoverStats { failovers: 0, spurious: 0, rejoins: 0, detected_timeout: 0, detected_teardown: 0, cm_disconnects: 0, rerouted: 0, replayed: 0, replayed_acked: 0, nak_replayed: 0, ledger_recorded: 0, ledger_evicted: 0, ledger_resident: 0, epoch: 0, duplicate_events: 0 }, rebalance: None, queries: QueryOutcomes { kw_found: 35, kw_ambiguous: 0, kw_missing: 12, pc_found: 3, pc_missing: 14, append_entries: 28, inc_estimate_total: 1262, fanout_lookups: 0 }, query: None }",
    );
    assert_eq!(memory_fingerprint(&out.memory), 0x09ae0fbf4d99061b);
}

#[test]
fn k4_sharded_clean_matches_pre_rewrite_engine() {
    let spec = ScenarioSpec { seed: 0xD7A0_0003, ..ScenarioSpec::smoke(TranslatorMode::Sharded { shards: 4 }) };
    let out = run_scenario(&spec);
    assert_eq!(
        format!("{:?}", out.report),
        "ScenarioReport { sent: PrimitiveCounts { key_write: 100, append: 50, key_increment: 56, postcard: 250 }, reports_unsent: 0, net: NetworkStats { delivered: 0, forwarded: 1336, dropped: 0, intercepted: 456 }, faults: FaultTotals { dropped: 0, corrupted: 0, reordered: 0, duplicated: 0 }, links: LinkStats { enqueued: 1792, dropped: 0, transmitted: 1792, bytes_tx: 126502, pauses: 0 }, translator: TranslatorStats { reports_in: 456, rdma_out: 370, rate_limited: 0, nacks_sent: 0, no_service: 0, resyncs: 0 }, translator_node: TranslatorNodeStats { dta_in: 456, malformed: 0, forwarded: 0, roce_responses: 0 }, reporter: RetxStats { nacks_received: 0, stray_received: 0, retransmitted: 0, retries_exhausted: 0, nacks_unmatched: 0 }, per_shard_reports_in: [118, 133, 114, 91], executed: 370, collector: CollectorNodeStats { executed: 0, naks: 0, dropped: 0 }, failover: FailoverStats { failovers: 0, spurious: 0, rejoins: 0, detected_timeout: 0, detected_teardown: 0, cm_disconnects: 0, rerouted: 0, replayed: 0, replayed_acked: 0, nak_replayed: 0, ledger_recorded: 0, ledger_evicted: 0, ledger_resident: 0, epoch: 0, duplicate_events: 0 }, rebalance: None, queries: QueryOutcomes { kw_found: 83, kw_ambiguous: 0, kw_missing: 0, pc_found: 50, pc_missing: 0, append_entries: 50, inc_estimate_total: 2667, fanout_lookups: 0 }, query: None }",
    );
    assert_eq!(memory_fingerprint(&out.memory), 0x8fe9eef3464d3564);
}

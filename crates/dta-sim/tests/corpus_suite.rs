//! Corpus conformance: the `scenarios/` tree is a first-class test input.
//!
//! Always-on (debug) checks parse + validate every corpus file and pin
//! the preset ports byte-for-byte against their Rust constructors; the
//! release-gated half actually runs cells — per-file smoke cells twice
//! for bit-reproducibility, and every cell of files tagged
//! `cross_mode_identical` for single-vs-sharded memory equality.

use std::path::{Path, PathBuf};

use dta_sim::{load_dir, load_file, Axis, CorpusDoc, ScenarioSpec, TranslatorMode};
#[cfg(not(debug_assertions))]
use dta_sim::{memory_fingerprint, run_scenario};

/// `(corpus file, expected base preset, optional sharded cell check)`.
type PresetCase = (&'static str, ScenarioSpec, Option<(&'static str, ScenarioSpec)>);

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn load_corpus() -> Vec<CorpusDoc> {
    let docs = load_dir(&corpus_dir()).expect("every corpus file must parse and validate");
    assert!(!docs.is_empty(), "scenarios/ must not be empty");
    docs
}

fn cell_spec(doc: &CorpusDoc, id: &str) -> ScenarioSpec {
    doc.cells()
        .into_iter()
        .find(|c| c.id() == id)
        .unwrap_or_else(|| panic!("{}: no cell [{id}]", doc.file))
        .spec
}

/// Every Rust preset exists as a corpus file whose base spec — and, via
/// the mode axis, whose sharded cell — is *identical* to the constructor's
/// output. This is the acceptance criterion that keeps the corpus and the
/// code from drifting apart.
#[test]
fn preset_ports_parse_to_identical_specs() {
    let sharded4 = TranslatorMode::Sharded { shards: 4 };
    let cases: Vec<PresetCase> = vec![
        ("default.toml", ScenarioSpec::default(), None),
        (
            "smoke.toml",
            ScenarioSpec::smoke(TranslatorMode::SingleThreaded),
            Some(("seed=1,mode=sharded4", ScenarioSpec::smoke(sharded4))),
        ),
        (
            "congested.toml",
            ScenarioSpec::congested(TranslatorMode::SingleThreaded),
            Some(("seed=1,mode=sharded4", ScenarioSpec::congested(sharded4))),
        ),
        (
            "failover.toml",
            ScenarioSpec::failover(TranslatorMode::SingleThreaded),
            Some(("seed=1,victim=1,mode=sharded4", ScenarioSpec::failover(sharded4))),
        ),
        (
            "rebalance.toml",
            ScenarioSpec::rebalance(TranslatorMode::SingleThreaded),
            Some(("seed=1,mode=sharded4", ScenarioSpec::rebalance(sharded4))),
        ),
        (
            "query_under_load.toml",
            ScenarioSpec::query_under_load(TranslatorMode::SingleThreaded),
            Some(("seed=1,mode=sharded4", ScenarioSpec::query_under_load(sharded4))),
        ),
        (
            "large.toml",
            ScenarioSpec::large(TranslatorMode::SingleThreaded),
            Some(("mode=sharded4", ScenarioSpec::large(sharded4))),
        ),
    ];
    for (file, want, sharded) in cases {
        let doc = load_file(&corpus_dir().join(file))
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(doc.spec, want, "{file} base spec drifted from its preset");
        if let Some((cell_id, want_sharded)) = sharded {
            assert_eq!(
                cell_spec(&doc, cell_id),
                want_sharded,
                "{file} cell [{cell_id}] drifted from the sharded preset"
            );
        }
    }
}

/// Every file parses, validates (`load_dir` runs `validate()` on the base
/// spec and every expanded cell), declares at least one invariant, and
/// the corpus carries the acceptance grid: one file expanding to a
/// >= 64-cell seed×fault×mode sweep.
#[test]
fn corpus_conforms() {
    let docs = load_corpus();
    for doc in &docs {
        assert!(
            doc.invariants.any(),
            "{}: a corpus file with no invariants checks nothing",
            doc.file
        );
        assert!(doc.cell_count() >= 1);
    }
    let grid = docs
        .iter()
        .find(|d| {
            d.cell_count() >= 64
                && d.sweep.iter().any(|a| matches!(a, Axis::Seed(_)))
                && d.sweep.iter().any(|a| matches!(a, Axis::Mode(_)))
                && d.sweep.iter().any(|a| {
                    matches!(a, Axis::Drop(_) | Axis::Reorder(_) | Axis::Duplicate(_))
                })
        })
        .expect("corpus must carry a >= 64-cell seed×fault×mode grid");
    assert!(grid.invariants.cross_mode_memory_equal, "{}: the acceptance grid must check cross-mode memory", grid.file);
}

/// Release suite: a 1-cell smoke of every corpus file per declared mode
/// (the file's own `mode` axis decides its mode coverage — `default.toml`
/// deliberately has none, since its non-slot-disjoint traffic makes
/// sharded memory nondeterministic), each run twice asserting
/// bit-reproducibility of the report and collector memory.
#[cfg(not(debug_assertions))]
#[test]
fn corpus_smoke_cells_are_bit_reproducible() {
    for doc in load_corpus() {
        for cell in doc.smoke_cells() {
            let a = run_scenario(&cell.spec);
            let b = run_scenario(&cell.spec);
            assert_eq!(
                a.report,
                b.report,
                "{} [{}]: report must be a pure function of the spec",
                doc.file,
                cell.id()
            );
            assert_eq!(
                memory_fingerprint(&a.memory),
                memory_fingerprint(&b.memory),
                "{} [{}]: collector memory must be bit-identical",
                doc.file,
                cell.id()
            );
        }
    }
}

/// Release suite: for every file tagged `cross_mode_identical`, every
/// group of cells differing only in the `mode` axis leaves byte-identical
/// merged collector memory — the corpus-driven replacement for the
/// hand-picked differential specs the suite used to carry.
#[cfg(not(debug_assertions))]
#[test]
fn cross_mode_tagged_corpus_leaves_identical_memory() {
    let mut tagged = 0;
    for doc in load_corpus() {
        if !doc.has_tag("cross_mode_identical") {
            continue;
        }
        tagged += 1;
        let mut groups: Vec<(String, Vec<(String, u64)>)> = Vec::new();
        for cell in doc.cells() {
            let fp = memory_fingerprint(&run_scenario(&cell.spec).memory);
            let g = cell.mode_group_id();
            match groups.iter_mut().find(|(name, _)| *name == g) {
                Some((_, members)) => members.push((cell.id(), fp)),
                None => groups.push((g, vec![(cell.id(), fp)])),
            }
        }
        for (group, members) in &groups {
            assert!(
                members.len() >= 2,
                "{} group [{group}] has no mode pair to compare",
                doc.file
            );
            let (c0, fp0) = &members[0];
            for (c, fp) in &members[1..] {
                assert_eq!(
                    fp, fp0,
                    "{}: memory diverged between [{c0}] and [{c}]",
                    doc.file
                );
            }
        }
    }
    assert!(tagged >= 4, "expected the preset ports to carry the tag, got {tagged}");
}

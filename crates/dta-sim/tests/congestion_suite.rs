//! The congestion-loop test suite (§5.2 end to end).
//!
//! Four claims turned into executable checks:
//!
//! 1. **Recovery** — with translator rate limiting, NACK-on-drop, and
//!    reporter retransmission, a run whose rate limiter drops a third of
//!    the offered load still converges to collector memory *byte-identical*
//!    to the same seed's unthrottled run, in both translator modes — and
//!    the loop's ledger closes exactly (`nacks_received == nacks_sent`,
//!    every NACK answered by a retransmission).
//! 2. **Collapse** — when the retry budget is exhausted the run stays
//!    bit-reproducible and every loss is accounted (`retries_exhausted`,
//!    `kw_missing`), it just no longer converges.
//! 3. **PFC** — a squeezed lossless ToR→collector hop pauses instead of
//!    dropping (`pauses > 0, dropped == 0`, every RDMA write executes); a
//!    lossy twin of the same hop tail-drops, which is why the RoCE class
//!    must be lossless.
//! 4. **Mode equivalence** — the NACK loop closes identically under
//!    adversarial uplink fault schedules whether the single-threaded or
//!    the sharded pipeline fronts the collector, and congested sharded
//!    runs leak no thread-scheduling artifacts (two runs, identical report
//!    and memory).

use dta_net::{LinkConfig, QueueDiscipline};
use dta_reporter::RetransmitPolicy;
use dta_sim::{
    run_scenario, CongestionPlan, FaultPlan, ScenarioSpec, TranslatorMode,
};
use dta_translator::RateLimiterConfig;
use proptest::prelude::*;

/// The congested preset at a pinned seed, per mode.
fn congested(mode: TranslatorMode, seed: u64) -> ScenarioSpec {
    ScenarioSpec { seed, ..ScenarioSpec::congested(mode) }
}

#[test]
fn congestion_recovery_converges_to_unthrottled_memory() {
    let mut memories = Vec::new();
    for mode in [TranslatorMode::SingleThreaded, TranslatorMode::Sharded { shards: 4 }] {
        let spec = congested(mode, 0xC04F_0001);
        let unthrottled =
            ScenarioSpec { congestion: CongestionPlan::none(), ..spec.clone() };
        let a = run_scenario(&spec);
        let b = run_scenario(&unthrottled);
        let r = &a.report;
        // The limiter really bit, and every drop was NACKed.
        assert!(r.translator.rate_limited > 0, "{mode:?}: limiter never fired");
        assert!(r.translator.nacks_sent > 0);
        assert_eq!(r.translator.nacks_sent, r.translator.rate_limited);
        // The loop closes: every NACK arrived and was answered by exactly
        // one retransmission; nothing exhausted its budget or missed the
        // window.
        assert_eq!(r.reporter.nacks_received, r.translator.nacks_sent, "{mode:?}: NACKs lost");
        assert_eq!(r.reporter.retransmitted, r.reporter.nacks_received);
        assert_eq!(r.reporter.retries_exhausted, 0);
        assert_eq!(r.reporter.nacks_unmatched, 0);
        assert!(r.reporter.ledger_closes());
        assert_eq!(r.reports_unsent, 0);
        // Unthrottled twin: same workload, no congestion machinery at all.
        assert_eq!(b.report.translator.rate_limited, 0);
        assert_eq!(b.report.reporter.nacks_received, 0);
        // Convergence: the retransmit loop recovered every dropped report,
        // so final collector memory is byte-identical to the unthrottled
        // run and the query audit is clean.
        assert_eq!(r.queries.kw_missing, 0, "{mode:?}: a dropped Key-Write never recovered");
        assert_eq!(r.queries, b.report.queries, "{mode:?}: query audits diverged");
        assert_eq!(a.memory, b.memory, "{mode:?}: congested memory != unthrottled memory");
        memories.push(a.memory);
    }
    // Single-vs-sharded NACK equivalence under a clean fabric: both modes
    // converge to the same bytes (each equals its unthrottled twin, and
    // the unthrottled twins are fault-equivalent).
    assert_eq!(memories[0], memories[1], "modes converged to different memory");
}

#[test]
fn congested_runs_are_bit_reproducible_in_both_modes() {
    for mode in [TranslatorMode::SingleThreaded, TranslatorMode::Sharded { shards: 4 }] {
        let spec = congested(mode, 0xC04F_0002);
        let a = run_scenario(&spec);
        let b = run_scenario(&spec);
        assert_eq!(a.report, b.report, "{mode:?}: congested report not reproducible");
        assert_eq!(a.memory, b.memory, "{mode:?}: congested memory not reproducible");
    }
}

#[test]
fn congestion_collapse_accounts_every_loss_and_stays_reproducible() {
    for mode in [TranslatorMode::SingleThreaded, TranslatorMode::Sharded { shards: 4 }] {
        // Starve the refill and cap retries at 2: recovery must fail for
        // part of the load — loudly, and identically on every run.
        let mut spec = congested(mode, 0xC04F_0003);
        spec.congestion.rate_limit = Some(RateLimiterConfig { msgs_per_sec: 2e6, burst: 16 });
        spec.congestion.retransmit =
            Some(RetransmitPolicy { window: 1024, max_retries: 2, pace_ns: 10_000 });
        let a = run_scenario(&spec);
        let r = &a.report;
        assert!(r.translator.rate_limited > 0);
        assert!(r.reporter.retries_exhausted > 0, "{mode:?}: retry budget never exhausted");
        assert!(r.queries.kw_missing > 0, "{mode:?}: collapse must lose Key-Writes");
        // Exhausted or not, every NACK is accounted one way.
        assert_eq!(r.reporter.nacks_received, r.translator.nacks_sent);
        assert!(r.reporter.ledger_closes());
        // Retransmissions stop at the budget: each report retransmits at
        // most max_retries times, so the counter is bounded by the NACKs
        // that carried a remaining budget.
        assert!(r.reporter.retransmitted < r.reporter.nacks_received);
        // Collapse is still a pure function of the spec.
        let b = run_scenario(&spec);
        assert_eq!(a.report, b.report, "{mode:?}: collapse not reproducible");
        assert_eq!(a.memory, b.memory);
    }
}

#[test]
fn pfc_lossless_rdma_hop_pauses_without_dropping() {
    // Squeeze the ToR→collector hop to 1G with a 4KB XOFF threshold: the
    // translator's RDMA bursts overrun it, so PFC must assert pauses —
    // and deliver every packet anyway.
    let squeezed = LinkConfig {
        bandwidth_bps: 1_000_000_000,
        discipline: QueueDiscipline::Lossless { xoff_bytes: 4096, xon_bytes: 1024 },
        ..LinkConfig::dc_100g_lossless()
    };
    let mut spec = ScenarioSpec {
        seed: 0x9FC_0001,
        ..ScenarioSpec::smoke(TranslatorMode::SingleThreaded)
    };
    spec.congestion.rdma_link = squeezed;
    spec.drain_ns = 2_000_000; // the 1G hop needs longer to serialize
    let out = run_scenario(&spec);
    let r = &out.report;
    assert!(r.links.pauses > 0, "squeezed lossless hop never paused");
    assert_eq!(r.links.dropped, 0, "PFC must not drop");
    assert_eq!(r.net.dropped, 0);
    assert_eq!(
        r.collector.executed, r.translator.rdma_out,
        "every RDMA write must survive the paused hop"
    );
    assert_eq!(r.reports_unsent, 0);
    assert_eq!(r.queries.kw_missing, 0);

    // The lossy twin of the same squeeze tail-drops — the §4/§7 argument
    // for running the RoCE class lossless, as a measured contrast.
    spec.congestion.rdma_link = LinkConfig {
        bandwidth_bps: 1_000_000_000,
        queue_bytes: 4096,
        discipline: QueueDiscipline::Lossy,
        ..LinkConfig::dc_100g()
    };
    let lossy = run_scenario(&spec);
    assert!(lossy.report.links.dropped > 0, "lossy twin must tail-drop under the same load");
    assert!(lossy.report.collector.executed < lossy.report.translator.rdma_out);
}

proptest! {
    /// Single-vs-sharded NACK equivalence under the fault plan: with
    /// loss, reordering, and duplication on the report uplinks (the NACK
    /// return path stays clean) plus an adversarial rate limit, the
    /// congestion loop's ledger closes *exactly* in both translator
    /// modes — every rate-limited drop NACKs, every NACK arrives, and
    /// every NACK is answered (retransmitted or budget-exhausted; never
    /// silently lost). The sharded run is also re-run to pin that the
    /// worker→engine NACK hand-off leaks no thread-scheduling artifacts
    /// under faults.
    #[test]
    fn nack_loop_closes_in_both_modes_under_uplink_faults(
        seed in any::<u64>(),
        drop_pct in 0u32..25,
        reorder_pct in 0u32..25,
        dup_pct in 0u32..25,
        burst in 16u64..96,
        ops in 6u32..14,
    ) {
        let faults = FaultPlan {
            report_uplinks: dta_net::FaultConfig::unreliable(
                drop_pct as f64 / 100.0,
                reorder_pct as f64 / 100.0,
                dup_pct as f64 / 100.0,
            ),
            fabric: dta_net::FaultConfig::none(),
            rdma_hop: dta_net::FaultConfig::none(),
        };
        let base = ScenarioSpec {
            ops_per_reporter: ops,
            faults,
            seed,
            ..ScenarioSpec::congested(TranslatorMode::SingleThreaded)
        };
        let mut specs = vec![base.clone()];
        specs.push(ScenarioSpec { mode: TranslatorMode::Sharded { shards: 4 }, ..base });
        for (i, mut spec) in specs.into_iter().enumerate() {
            spec.congestion.rate_limit = Some(RateLimiterConfig { msgs_per_sec: 10e6, burst });
            let a = run_scenario(&spec);
            let r = &a.report;
            prop_assert_eq!(
                r.translator.nacks_sent, r.translator.rate_limited,
                "every rate-limited report carried the nack flag"
            );
            prop_assert_eq!(
                r.reporter.nacks_received, r.translator.nacks_sent,
                "clean return path: no NACK may vanish (mode {})", i
            );
            prop_assert_eq!(r.reporter.nacks_unmatched, 0u64, "window must cover the run");
            prop_assert!(r.reporter.ledger_closes(), "NACK ledger leaked (mode {})", i);
            prop_assert_eq!(r.reports_unsent, 0u64);
            if i == 1 {
                let b = run_scenario(&spec);
                prop_assert_eq!(&a.report, &b.report, "sharded congested run not reproducible");
                prop_assert!(a.memory == b.memory, "sharded congested memory not reproducible");
            }
        }
    }
}

//! Declarative scenario corpus: file-backed [`ScenarioSpec`]s.
//!
//! Every scenario the harness can express is reachable from a plain text
//! file in a TOML subset (see `DESIGN.md`, "Scenario corpus"), so scenario
//! coverage is a growing, greppable artifact under `scenarios/` instead of
//! a handful of hand-written Rust presets. A corpus file is:
//!
//! * a **base spec** — `key = value` assignments and `[section]` tables
//!   covering every plan a [`ScenarioSpec`] carries ([`crate::TrafficMix`],
//!   [`crate::FaultPlan`], [`crate::CongestionPlan`],
//!   [`crate::CollectorPlan`] / [`crate::CollectorFaultPlan`],
//!   [`crate::RebalancePlan`], translator/collector sizing). Anything not
//!   named keeps the [`ScenarioSpec::default`] value, so files stay short;
//! * an optional **`[sweep]` grid** — per-axis value lists (seed, mode,
//!   victim, kill time, fault rates) whose cartesian product expands into
//!   many concrete cells;
//! * an optional **`[invariants]` set** — per-file assertions the `sweep`
//!   runner enforces on every cell (bit-reproducibility, cross-mode memory
//!   equality, ledger closure, `fanout_lookups == 0`, ...);
//! * optional **`tags`** — free-form labels tests select on (e.g.
//!   `cross_mode_identical` drives the differential corpus test).
//!
//! The parser is hand-rolled (the build environment has no crates.io; the
//! `BENCH_translator.json` reader in `crates/bench/src/perf.rs` is the
//! precedent) and *strict*: unknown sections or keys, type mismatches, and
//! out-of-range values are errors carrying the offending file, line, and
//! key — a corpus typo fails loudly, never silently half-applies.
//! [`load_str`] additionally validates the base spec and **every expanded
//! cell** through [`ScenarioSpec::validate`], so an invalid cell cannot
//! hide in an unexercised corner of a grid.
//!
//! [`render_spec`] is the inverse of the spec-table parser: it emits a
//! complete document (every field, every section) that re-parses to an
//! identical spec. The round-trip property test pins parser and renderer
//! against each other, so a new plan field cannot be added to one side
//! only.

use std::fmt;

use dta_net::{FaultConfig, LinkConfig, QueueDiscipline};
use dta_reporter::RetransmitPolicy;
use dta_translator::RateLimiterConfig;

use crate::spec::{CollectorFaultPlan, QueryPlan, RebalancePlan, ScenarioSpec, TranslatorMode};

/// A parse or validation failure, carrying enough context to act on:
/// `file:line: message`, with the message naming the offending key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// File the error was found in (as passed to the loader).
    pub file: String,
    /// 1-based line, or 0 when the error is document-level (e.g. a
    /// [`ScenarioSpec::validate`] rejection of the assembled spec).
    pub line: usize,
    /// What went wrong, naming the key/section involved.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: {}", self.file, self.line, self.message)
        } else {
            write!(f, "{}: {}", self.file, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// One scalar (or list of scalars) on the right of a `key = value` line.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(u64),
    Float(f64),
    Bool(bool),
    List(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::List(_) => "list",
        }
    }
}

/// The invariant assertions a corpus file opts into; the `sweep` runner
/// enforces each enabled one on every cell (or cell group) and counts it
/// in the coverage report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvariantSet {
    /// Run each cell twice; the [`crate::ScenarioReport`]s and collector
    /// memory must be byte-identical.
    pub bit_reproducible: bool,
    /// Cells differing only in the `mode` axis must leave byte-identical
    /// collector memory. Requires a `mode` sweep axis with >= 2 values.
    pub cross_mode_memory_equal: bool,
    /// `reports_unsent == 0`: the emission window covered the schedule.
    pub no_unsent: bool,
    /// `net.dropped == 0` and zero injected drops — for clean-fabric files.
    pub no_fabric_drops: bool,
    /// Every bounded ledger closes: the reporter retransmit window
    /// ([`dta_reporter::RetxStats::ledger_closes`]), the failover replay
    /// ledger, and the rebalance migration ledger.
    pub ledger_closure: bool,
    /// `queries.fanout_lookups == 0`: every key queried back from its
    /// routed owner (the post-rebalance single-owner property).
    pub fanout_lookups_zero: bool,
    /// `kw_missing == 0 && kw_ambiguous == 0`: every written Key-Write key
    /// queried back unambiguously.
    pub kw_audit_clean: bool,
    /// `query.answered > 0`: a [`crate::QueryPlan`] cell actually served
    /// queries during the write phase (guards against a start/stop window
    /// that misses every epoch).
    pub queries_answered: bool,
    /// Cross-check the observed Key-Write audit success rate against the
    /// `dta-analysis::montecarlo` abstract-store prediction for the same
    /// load (slots, redundancy, keys written).
    pub kw_audit_vs_montecarlo: bool,
}

impl InvariantSet {
    /// Names of the enabled invariants, in declaration order.
    pub fn enabled(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        let mut push = |on: bool, name| {
            if on {
                out.push(name);
            }
        };
        push(self.bit_reproducible, "bit_reproducible");
        push(self.cross_mode_memory_equal, "cross_mode_memory_equal");
        push(self.no_unsent, "no_unsent");
        push(self.no_fabric_drops, "no_fabric_drops");
        push(self.ledger_closure, "ledger_closure");
        push(self.fanout_lookups_zero, "fanout_lookups_zero");
        push(self.kw_audit_clean, "kw_audit_clean");
        push(self.queries_answered, "queries_answered");
        push(self.kw_audit_vs_montecarlo, "kw_audit_vs_montecarlo");
        out
    }

    /// Whether any invariant is enabled.
    pub fn any(&self) -> bool {
        !self.enabled().is_empty()
    }
}

/// One sweep axis: what it varies and over which values.
#[derive(Debug, Clone, PartialEq)]
pub enum Axis {
    /// `spec.seed`.
    Seed(Vec<u64>),
    /// `spec.mode` (`"single"`, `"sharded2"`, `"sharded4"`, ...).
    Mode(Vec<TranslatorMode>),
    /// `spec.collectors.fault.victim` (requires a `[collectors.fault]`).
    Victim(Vec<u32>),
    /// `spec.collectors.fault.kill_at_ns` (requires a `[collectors.fault]`).
    KillAt(Vec<u64>),
    /// Report-path drop chance (uplinks + fabric).
    Drop(Vec<f64>),
    /// Report-path pairwise-reorder chance (uplinks + fabric).
    Reorder(Vec<f64>),
    /// Report-path duplicate-delivery chance (uplinks + fabric).
    Duplicate(Vec<f64>),
}

impl Axis {
    /// Axis name as it appears under `[sweep]` and in coverage reports.
    pub fn name(&self) -> &'static str {
        match self {
            Axis::Seed(_) => "seed",
            Axis::Mode(_) => "mode",
            Axis::Victim(_) => "victim",
            Axis::KillAt(_) => "kill_at_ns",
            Axis::Drop(_) => "drop",
            Axis::Reorder(_) => "reorder",
            Axis::Duplicate(_) => "duplicate",
        }
    }

    /// Number of values on the axis.
    pub fn len(&self) -> usize {
        match self {
            Axis::Seed(v) => v.len(),
            Axis::Mode(v) => v.len(),
            Axis::Victim(v) => v.len(),
            Axis::KillAt(v) => v.len(),
            Axis::Drop(v) | Axis::Reorder(v) | Axis::Duplicate(v) => v.len(),
        }
    }

    /// Whether the axis has no values (never true for a parsed axis).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Display label of value `i` (coverage-report coordinate).
    fn label(&self, i: usize) -> String {
        match self {
            Axis::Seed(v) => v[i].to_string(),
            Axis::Mode(v) => mode_label(v[i]),
            Axis::Victim(v) => v[i].to_string(),
            Axis::KillAt(v) => v[i].to_string(),
            Axis::Drop(v) | Axis::Reorder(v) | Axis::Duplicate(v) => format!("{:?}", v[i]),
        }
    }

    /// Apply value `i` onto `spec`.
    fn apply(&self, i: usize, spec: &mut ScenarioSpec) {
        match self {
            Axis::Seed(v) => spec.seed = v[i],
            Axis::Mode(v) => spec.mode = v[i],
            Axis::Victim(v) => {
                if let Some(f) = spec.collectors.fault.as_mut() {
                    f.victim = v[i];
                }
            }
            Axis::KillAt(v) => {
                if let Some(f) = spec.collectors.fault.as_mut() {
                    f.kill_at_ns = v[i];
                }
            }
            Axis::Drop(v) => {
                spec.faults.report_uplinks.drop_chance = v[i];
                spec.faults.fabric.drop_chance = v[i];
            }
            Axis::Reorder(v) => {
                spec.faults.report_uplinks.reorder_chance = v[i];
                spec.faults.fabric.reorder_chance = v[i];
            }
            Axis::Duplicate(v) => {
                spec.faults.report_uplinks.duplicate_chance = v[i];
                spec.faults.fabric.duplicate_chance = v[i];
            }
        }
    }
}

/// One expanded grid cell: a concrete runnable spec plus its coordinates.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The concrete spec (base spec with every axis value applied).
    pub spec: ScenarioSpec,
    /// `(axis, value-label)` pairs in axis declaration order; empty for the
    /// base cell of a sweep-less file.
    pub coords: Vec<(&'static str, String)>,
}

impl Cell {
    /// `axis=value,axis=value` coordinate string (stable cell identity).
    pub fn id(&self) -> String {
        if self.coords.is_empty() {
            return "base".to_string();
        }
        self.coords
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// [`Cell::id`] with the `mode` axis removed — cells sharing this key
    /// differ only in translator mode (the cross-mode comparison group).
    pub fn mode_group_id(&self) -> String {
        self.coords
            .iter()
            .filter(|(a, _)| *a != "mode")
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// A parsed corpus file: base spec, tags, sweep grid, invariants.
#[derive(Debug, Clone)]
pub struct CorpusDoc {
    /// File name the document was parsed from (error context, report key).
    pub file: String,
    /// The base scenario (defaults filled in).
    pub spec: ScenarioSpec,
    /// Free-form labels (`cross_mode_identical`, ...).
    pub tags: Vec<String>,
    /// Sweep axes in declaration order (empty = single-cell file).
    pub sweep: Vec<Axis>,
    /// Per-file assertions the sweep runner enforces.
    pub invariants: InvariantSet,
}

impl CorpusDoc {
    /// Whether the document carries `tag`.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    /// Total cells the sweep grid expands to (1 for a sweep-less file).
    pub fn cell_count(&self) -> usize {
        self.sweep.iter().map(Axis::len).product::<usize>().max(1)
    }

    /// Expand the full grid: the cartesian product of every axis, axes
    /// varying slowest-first in declaration order. A sweep-less file
    /// yields its base spec as the single cell.
    pub fn cells(&self) -> Vec<Cell> {
        let total = self.cell_count();
        let mut out = Vec::with_capacity(total);
        for mut idx in 0..total {
            let mut picks = vec![0usize; self.sweep.len()];
            for (slot, axis) in self.sweep.iter().enumerate().rev() {
                picks[slot] = idx % axis.len();
                idx /= axis.len();
            }
            let mut spec = self.spec.clone();
            let mut coords = Vec::with_capacity(self.sweep.len());
            for (axis, &pick) in self.sweep.iter().zip(&picks) {
                axis.apply(pick, &mut spec);
                coords.push((axis.name(), axis.label(pick)));
            }
            out.push(Cell { spec, coords });
        }
        out
    }

    /// A deterministic 1-cell-per-mode smoke selection: the first grid
    /// cell for each distinct `mode`-axis value (every other axis at its
    /// first value), or the base spec when the file has no mode axis.
    /// This is what the corpus conformance test runs.
    pub fn smoke_cells(&self) -> Vec<Cell> {
        let modes = self
            .sweep
            .iter()
            .find_map(|a| match a {
                Axis::Mode(m) => Some(m.len()),
                _ => None,
            })
            .unwrap_or(1);
        let cells = self.cells();
        (0..modes)
            .map(|want| {
                cells
                    .iter()
                    .find(|c| {
                        c.coords
                            .iter()
                            .find(|(a, _)| *a == "mode")
                            .is_none_or(|(_, v)| {
                                let label = self
                                    .sweep
                                    .iter()
                                    .find_map(|a| match a {
                                        Axis::Mode(m) => Some(mode_label(m[want])),
                                        _ => None,
                                    })
                                    .unwrap();
                                *v == label
                            })
                    })
                    .expect("grid is non-empty")
                    .clone()
            })
            .collect()
    }
}

/// `mode`-axis label of a translator mode (`single`, `sharded4`, ...).
pub fn mode_label(mode: TranslatorMode) -> String {
    match mode {
        TranslatorMode::SingleThreaded => "single".to_string(),
        TranslatorMode::Sharded { shards } => format!("sharded{shards}"),
    }
}

/// Parse a `mode`-axis label back into a translator mode.
pub fn parse_mode_label(s: &str) -> Option<TranslatorMode> {
    if s == "single" {
        return Some(TranslatorMode::SingleThreaded);
    }
    let shards: usize = s.strip_prefix("sharded")?.parse().ok()?;
    (shards >= 1).then_some(TranslatorMode::Sharded { shards })
}

// ---------------------------------------------------------------------------
// Lexing: lines -> (section path, key, Value)
// ---------------------------------------------------------------------------

fn err(file: &str, line: usize, message: impl Into<String>) -> ParseError {
    ParseError { file: file.to_string(), line, message: message.into() }
}

/// Parse one scalar token (no lists).
fn parse_scalar(file: &str, line: usize, tok: &str) -> Result<Value, ParseError> {
    let tok = tok.trim();
    if let Some(rest) = tok.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(err(file, line, format!("unterminated string: {tok}")));
        };
        if inner.contains('"') {
            return Err(err(file, line, format!("embedded quote in string: {tok}")));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match tok {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    // Numbers: integers may use `_` separators; anything with `.`, `e`,
    // or `E` is a float. Negative numbers are rejected up front — every
    // spec field is unsigned.
    if tok.starts_with('-') {
        return Err(err(file, line, format!("negative values are not accepted: {tok}")));
    }
    let clean: String = tok.chars().filter(|&c| c != '_').collect();
    if clean.contains(['.', 'e', 'E']) {
        return clean
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(file, line, format!("malformed number: {tok}")));
    }
    clean
        .parse::<u64>()
        .map(Value::Int)
        .map_err(|_| err(file, line, format!("malformed value: {tok}")))
}

/// Parse a value: scalar or a one-line `[a, b, c]` list of scalars.
fn parse_value(file: &str, line: usize, raw: &str) -> Result<Value, ParseError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err(err(file, line, format!("unterminated list: {raw}")));
        };
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Value::List(Vec::new()));
        }
        let items = inner
            .split(',')
            .map(|tok| parse_scalar(file, line, tok))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Value::List(items));
    }
    parse_scalar(file, line, raw)
}

/// One meaningful line of a document.
#[derive(Debug)]
struct Item {
    line: usize,
    section: String,
    key: String,
    value: Value,
}

/// Scan the document into `(section, key, value)` items.
fn scan(file: &str, text: &str) -> Result<Vec<Item>, ParseError> {
    let mut items = Vec::new();
    let mut section = String::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        // Strip comments outside strings: a `#` inside quotes is content.
        let mut in_str = false;
        let mut code = raw;
        for (pos, c) in raw.char_indices() {
            match c {
                '"' => in_str = !in_str,
                '#' if !in_str => {
                    code = &raw[..pos];
                    break;
                }
                _ => {}
            }
        }
        let code = code.trim();
        if code.is_empty() {
            continue;
        }
        if let Some(rest) = code.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(err(file, line, format!("malformed section header: {code}")));
            };
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.') {
                return Err(err(file, line, format!("malformed section name: [{name}]")));
            }
            section = name.to_string();
            continue;
        }
        let Some((key, value)) = code.split_once('=') else {
            return Err(err(file, line, format!("expected `key = value`, got: {code}")));
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err(file, line, format!("malformed key: {key}")));
        }
        items.push(Item {
            line,
            section: section.clone(),
            key: key.to_string(),
            value: parse_value(file, line, value)?,
        });
    }
    Ok(items)
}

// ---------------------------------------------------------------------------
// Typed field extraction
// ---------------------------------------------------------------------------

fn want_u64(file: &str, it: &Item) -> Result<u64, ParseError> {
    match &it.value {
        Value::Int(v) => Ok(*v),
        other => Err(err(
            file,
            it.line,
            format!("key `{}` wants an integer, got {}", it.key, other.type_name()),
        )),
    }
}

fn want_u32(file: &str, it: &Item) -> Result<u32, ParseError> {
    let v = want_u64(file, it)?;
    u32::try_from(v)
        .map_err(|_| err(file, it.line, format!("key `{}` out of range: {v}", it.key)))
}

fn want_u8(file: &str, it: &Item) -> Result<u8, ParseError> {
    let v = want_u64(file, it)?;
    u8::try_from(v)
        .map_err(|_| err(file, it.line, format!("key `{}` out of range: {v}", it.key)))
}

fn want_usize(file: &str, it: &Item) -> Result<usize, ParseError> {
    let v = want_u64(file, it)?;
    usize::try_from(v)
        .map_err(|_| err(file, it.line, format!("key `{}` out of range: {v}", it.key)))
}

fn want_f64(file: &str, it: &Item) -> Result<f64, ParseError> {
    match &it.value {
        Value::Float(v) => Ok(*v),
        Value::Int(v) => Ok(*v as f64), // integer literals coerce to float
        other => Err(err(
            file,
            it.line,
            format!("key `{}` wants a number, got {}", it.key, other.type_name()),
        )),
    }
}

fn want_bool(file: &str, it: &Item) -> Result<bool, ParseError> {
    match &it.value {
        Value::Bool(v) => Ok(*v),
        other => Err(err(
            file,
            it.line,
            format!("key `{}` wants a boolean, got {}", it.key, other.type_name()),
        )),
    }
}

fn want_str<'a>(file: &str, it: &'a Item) -> Result<&'a str, ParseError> {
    match &it.value {
        Value::Str(v) => Ok(v),
        other => Err(err(
            file,
            it.line,
            format!("key `{}` wants a string, got {}", it.key, other.type_name()),
        )),
    }
}

fn want_list<'a>(file: &str, it: &'a Item) -> Result<&'a [Value], ParseError> {
    match &it.value {
        Value::List(v) if !v.is_empty() => Ok(v),
        Value::List(_) => {
            Err(err(file, it.line, format!("sweep axis `{}` must not be empty", it.key)))
        }
        other => Err(err(
            file,
            it.line,
            format!("key `{}` wants a list, got {}", it.key, other.type_name()),
        )),
    }
}

// ---------------------------------------------------------------------------
// Document assembly
// ---------------------------------------------------------------------------

/// Parse a document: syntax + key-level checks, **no**
/// [`ScenarioSpec::validate`] (see [`load_str`] for the validating entry
/// point; the parse/validate split lets the round-trip property test
/// exercise the parser on specs `validate()` would reject).
pub fn parse_str(file: &str, text: &str) -> Result<CorpusDoc, ParseError> {
    let items = scan(file, text)?;
    let mut spec = ScenarioSpec::default();
    let mut tags = Vec::new();
    let mut sweep: Vec<Axis> = Vec::new();
    let mut invariants = InvariantSet::default();

    // Deferred multi-key state.
    let mut mode_str: Option<(usize, String)> = None;
    let mut shards: Option<(usize, u64)> = None;
    let mut link_discipline: Option<(usize, String)> = None;
    let mut link_xoff: Option<usize> = None;
    let mut link_xon: Option<usize> = None;

    let fault_cfg = |cfg: &mut FaultConfig, file: &str, it: &Item| -> Result<bool, ParseError> {
        match it.key.as_str() {
            "drop_chance" => cfg.drop_chance = want_f64(file, it)?,
            "corrupt_chance" => cfg.corrupt_chance = want_f64(file, it)?,
            "reorder_chance" => cfg.reorder_chance = want_f64(file, it)?,
            "duplicate_chance" => cfg.duplicate_chance = want_f64(file, it)?,
            "size_limit" => cfg.size_limit = Some(want_usize(file, it)?),
            _ => return Ok(false),
        }
        Ok(true)
    };

    for it in &items {
        let unknown = || {
            let whole = if it.section.is_empty() {
                it.key.clone()
            } else {
                format!("{}.{}", it.section, it.key)
            };
            Err(err(file, it.line, format!("unknown key `{whole}`")))
        };
        match it.section.as_str() {
            "" => match it.key.as_str() {
                "fat_tree_k" => spec.fat_tree_k = want_u32(file, it)?,
                "reporters" => spec.reporters = want_u32(file, it)?,
                "ops_per_reporter" => spec.ops_per_reporter = want_u32(file, it)?,
                "seed" => spec.seed = want_u64(file, it)?,
                "tick_ns" => spec.tick_ns = want_u64(file, it)?,
                "reports_per_tick" => spec.reports_per_tick = want_usize(file, it)?,
                "drain_ns" => spec.drain_ns = want_u64(file, it)?,
                "mode" => mode_str = Some((it.line, want_str(file, it)?.to_string())),
                "shards" => shards = Some((it.line, want_u64(file, it)?)),
                "tags" => {
                    for v in want_list(file, it)? {
                        match v {
                            Value::Str(s) => tags.push(s.clone()),
                            other => {
                                return Err(err(
                                    file,
                                    it.line,
                                    format!("tags must be strings, got {}", other.type_name()),
                                ))
                            }
                        }
                    }
                }
                _ => return unknown(),
            },
            "traffic" => {
                let t = &mut spec.traffic;
                match it.key.as_str() {
                    "key_write" => t.key_write = want_u32(file, it)?,
                    "append" => t.append = want_u32(file, it)?,
                    "key_increment" => t.key_increment = want_u32(file, it)?,
                    "postcarding" => t.postcarding = want_u32(file, it)?,
                    "kw_redundancy" => t.kw_redundancy = want_u8(file, it)?,
                    "inc_redundancy" => t.inc_redundancy = want_u8(file, it)?,
                    "kw_keys" => t.kw_keys = want_usize(file, it)?,
                    "inc_keys" => t.inc_keys = want_usize(file, it)?,
                    "append_lists" => t.append_lists = want_u32(file, it)?,
                    "slot_disjoint_keys" => t.slot_disjoint_keys = want_bool(file, it)?,
                    "kw_write_once" => t.kw_write_once = want_bool(file, it)?,
                    "inc_slot_disjoint" => t.inc_slot_disjoint = want_bool(file, it)?,
                    _ => return unknown(),
                }
            }
            "faults.report_uplinks" => {
                if !fault_cfg(&mut spec.faults.report_uplinks, file, it)? {
                    return unknown();
                }
            }
            "faults.fabric" => {
                if !fault_cfg(&mut spec.faults.fabric, file, it)? {
                    return unknown();
                }
            }
            "faults.rdma_hop" => {
                if !fault_cfg(&mut spec.faults.rdma_hop, file, it)? {
                    return unknown();
                }
            }
            "congestion" => match it.key.as_str() {
                "nack_on_drop" => spec.congestion.nack_on_drop = want_bool(file, it)?,
                _ => return unknown(),
            },
            "congestion.rate_limit" => {
                let rl = spec
                    .congestion
                    .rate_limit
                    .get_or_insert(RateLimiterConfig::bluefield2());
                match it.key.as_str() {
                    "msgs_per_sec" => rl.msgs_per_sec = want_f64(file, it)?,
                    "burst" => rl.burst = want_u64(file, it)?,
                    _ => return unknown(),
                }
            }
            "congestion.retransmit" => {
                let rx = spec
                    .congestion
                    .retransmit
                    .get_or_insert(RetransmitPolicy::default());
                match it.key.as_str() {
                    "window" => rx.window = want_usize(file, it)?,
                    "max_retries" => rx.max_retries = want_u32(file, it)?,
                    "pace_ns" => rx.pace_ns = want_u64(file, it)?,
                    _ => return unknown(),
                }
            }
            "congestion.rdma_link" => {
                let l = &mut spec.congestion.rdma_link;
                match it.key.as_str() {
                    "bandwidth_bps" => l.bandwidth_bps = want_u64(file, it)?,
                    "latency_ns" => l.latency_ns = want_u64(file, it)?,
                    "queue_bytes" => l.queue_bytes = want_usize(file, it)?,
                    "discipline" => {
                        link_discipline = Some((it.line, want_str(file, it)?.to_string()))
                    }
                    "xoff_bytes" => link_xoff = Some(want_usize(file, it)?),
                    "xon_bytes" => link_xon = Some(want_usize(file, it)?),
                    _ => return unknown(),
                }
            }
            "collectors" => {
                let c = &mut spec.collectors;
                match it.key.as_str() {
                    "count" => c.count = want_u32(file, it)?,
                    "timeout_ns" => c.timeout_ns = want_u64(file, it)?,
                    "min_unacked" => c.min_unacked = want_u64(file, it)?,
                    "ledger_capacity" => c.ledger_capacity = want_usize(file, it)?,
                    _ => return unknown(),
                }
            }
            "collectors.fault" => {
                let f = spec
                    .collectors
                    .fault
                    .get_or_insert(CollectorFaultPlan::kill(0, 0));
                match it.key.as_str() {
                    "victim" => f.victim = want_u32(file, it)?,
                    "kill_at_ns" => f.kill_at_ns = want_u64(file, it)?,
                    "rejoin_at_ns" => f.rejoin_at_ns = Some(want_u64(file, it)?),
                    "spurious" => f.spurious = want_bool(file, it)?,
                    _ => return unknown(),
                }
            }
            "rebalance" => {
                let rb = spec.rebalance.get_or_insert(RebalancePlan::default());
                match it.key.as_str() {
                    "start_at_ns" => rb.start_at_ns = want_u64(file, it)?,
                    "fence_capacity" => rb.fence_capacity = want_usize(file, it)?,
                    "ledger_capacity" => rb.ledger_capacity = want_usize(file, it)?,
                    "drain_batch" => rb.drain_batch = want_usize(file, it)?,
                    "retry_ns" => rb.retry_ns = want_u64(file, it)?,
                    _ => return unknown(),
                }
            }
            "rebalance.faults" => {
                let mf = &mut spec
                    .rebalance
                    .get_or_insert(RebalancePlan::default())
                    .faults;
                match it.key.as_str() {
                    "drop_chance" => mf.drop_chance = want_f64(file, it)?,
                    "duplicate_chance" => mf.duplicate_chance = want_f64(file, it)?,
                    "reorder_chance" => mf.reorder_chance = want_f64(file, it)?,
                    _ => return unknown(),
                }
            }
            "query" => {
                let q = spec.query.get_or_insert(QueryPlan::default());
                match it.key.as_str() {
                    "rate" => q.rate = want_u32(file, it)?,
                    "start_ns" => q.start_ns = want_u64(file, it)?,
                    "stop_ns" => q.stop_ns = want_u64(file, it)?,
                    "seed" => q.seed = want_u64(file, it)?,
                    _ => return unknown(),
                }
            }
            "query.mix" => {
                let m = &mut spec.query.get_or_insert(QueryPlan::default()).mix;
                match it.key.as_str() {
                    "key_write" => m.key_write = want_u32(file, it)?,
                    "append" => m.append = want_u32(file, it)?,
                    "key_increment" => m.key_increment = want_u32(file, it)?,
                    "postcarding" => m.postcarding = want_u32(file, it)?,
                    _ => return unknown(),
                }
            }
            "translator" => {
                let t = &mut spec.translator;
                match it.key.as_str() {
                    "postcard_cache_slots" => t.postcard_cache_slots = want_usize(file, it)?,
                    "postcard_hops" => t.postcard_hops = want_u8(file, it)?,
                    "postcard_bits" => t.postcard_bits = want_u32(file, it)?,
                    "postcard_values" => t.postcard_values = want_u32(file, it)?,
                    "postcard_redundancy" => t.postcard_redundancy = want_usize(file, it)?,
                    "append_batch" => t.append_batch = want_usize(file, it)?,
                    "mtu" => t.mtu = want_usize(file, it)?,
                    "key_scratch_entries" => t.key_scratch_entries = want_usize(file, it)?,
                    _ => return unknown(),
                }
            }
            "translator.rate_limit" => {
                let rl = spec
                    .translator
                    .rate_limit
                    .get_or_insert(RateLimiterConfig::bluefield2());
                match it.key.as_str() {
                    "msgs_per_sec" => rl.msgs_per_sec = want_f64(file, it)?,
                    "burst" => rl.burst = want_u64(file, it)?,
                    _ => return unknown(),
                }
            }
            "service" => {
                let s = &mut spec.service;
                match it.key.as_str() {
                    "kw_bytes" => s.kw_bytes = want_u64(file, it)?,
                    "kw_value_bytes" => s.kw_value_bytes = want_u32(file, it)?,
                    "postcard_bytes" => s.postcard_bytes = want_u64(file, it)?,
                    "postcard_hops" => s.postcard_hops = want_u8(file, it)?,
                    "postcard_bits" => s.postcard_bits = want_u32(file, it)?,
                    "postcard_values" => s.postcard_values = want_u32(file, it)?,
                    "append_lists" => s.append_lists = want_u32(file, it)?,
                    "append_entries" => s.append_entries = want_u64(file, it)?,
                    "append_entry_bytes" => s.append_entry_bytes = want_u32(file, it)?,
                    "cms_slots" => s.cms_slots = want_u64(file, it)?,
                    "max_redundancy" => s.max_redundancy = want_usize(file, it)?,
                    _ => return unknown(),
                }
            }
            "service.nic" => {
                let n = &mut spec.service.nic;
                match it.key.as_str() {
                    "msg_rate" => n.msg_rate = want_f64(file, it)?,
                    "line_rate_bps" => n.line_rate_bps = want_f64(file, it)?,
                    "num_nics" => n.num_nics = want_u32(file, it)?,
                    "ack_coalesce" => n.ack_coalesce = want_u32(file, it)?,
                    _ => return unknown(),
                }
            }
            "sweep" => {
                let vals = want_list(file, it)?;
                let ints = |vals: &[Value]| -> Result<Vec<u64>, ParseError> {
                    vals.iter()
                        .map(|v| match v {
                            Value::Int(n) => Ok(*n),
                            other => Err(err(
                                file,
                                it.line,
                                format!(
                                    "sweep axis `{}` wants integers, got {}",
                                    it.key,
                                    other.type_name()
                                ),
                            )),
                        })
                        .collect()
                };
                let floats = |vals: &[Value]| -> Result<Vec<f64>, ParseError> {
                    vals.iter()
                        .map(|v| match v {
                            Value::Float(n) => Ok(*n),
                            Value::Int(n) => Ok(*n as f64),
                            other => Err(err(
                                file,
                                it.line,
                                format!(
                                    "sweep axis `{}` wants numbers, got {}",
                                    it.key,
                                    other.type_name()
                                ),
                            )),
                        })
                        .collect()
                };
                let axis = match it.key.as_str() {
                    "seed" => Axis::Seed(ints(vals)?),
                    "mode" => {
                        let modes = vals
                            .iter()
                            .map(|v| match v {
                                Value::Str(s) => parse_mode_label(s).ok_or_else(|| {
                                    err(
                                        file,
                                        it.line,
                                        format!(
                                            "bad mode `{s}` (want `single` or `sharded<N>`)"
                                        ),
                                    )
                                }),
                                other => Err(err(
                                    file,
                                    it.line,
                                    format!(
                                        "sweep axis `mode` wants strings, got {}",
                                        other.type_name()
                                    ),
                                )),
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        Axis::Mode(modes)
                    }
                    "victim" => Axis::Victim(
                        ints(vals)?
                            .into_iter()
                            .map(|v| {
                                u32::try_from(v).map_err(|_| {
                                    err(file, it.line, format!("victim out of range: {v}"))
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                    "kill_at_ns" => Axis::KillAt(ints(vals)?),
                    "drop" => Axis::Drop(floats(vals)?),
                    "reorder" => Axis::Reorder(floats(vals)?),
                    "duplicate" => Axis::Duplicate(floats(vals)?),
                    _ => return unknown(),
                };
                if sweep.iter().any(|a| a.name() == axis.name()) {
                    return Err(err(
                        file,
                        it.line,
                        format!("duplicate sweep axis `{}`", it.key),
                    ));
                }
                sweep.push(axis);
            }
            "invariants" => {
                let on = want_bool(file, it)?;
                match it.key.as_str() {
                    "bit_reproducible" => invariants.bit_reproducible = on,
                    "cross_mode_memory_equal" => invariants.cross_mode_memory_equal = on,
                    "no_unsent" => invariants.no_unsent = on,
                    "no_fabric_drops" => invariants.no_fabric_drops = on,
                    "ledger_closure" => invariants.ledger_closure = on,
                    "fanout_lookups_zero" => invariants.fanout_lookups_zero = on,
                    "kw_audit_clean" => invariants.kw_audit_clean = on,
                    "queries_answered" => invariants.queries_answered = on,
                    "kw_audit_vs_montecarlo" => invariants.kw_audit_vs_montecarlo = on,
                    _ => return unknown(),
                }
            }
            _ => {
                return Err(err(
                    file,
                    it.line,
                    format!("unknown section `[{}]`", it.section),
                ))
            }
        }
    }

    // Finalize the translator mode.
    match (mode_str, shards) {
        (None, None) => {}
        (None, Some((line, _))) => {
            return Err(err(file, line, "`shards` without `mode = \"sharded\"`"));
        }
        (Some((_, m)), None) if m == "single" => spec.mode = TranslatorMode::SingleThreaded,
        (Some((line, m)), Some(_)) if m == "single" => {
            return Err(err(file, line, "`mode = \"single\"` does not take `shards`"));
        }
        (Some((line, m)), None) if m == "sharded" => {
            return Err(err(file, line, "`mode = \"sharded\"` needs a `shards` key"));
        }
        (Some((_, m)), Some((sline, s))) if m == "sharded" => {
            let s = usize::try_from(s)
                .ok()
                .filter(|&s| s >= 1)
                .ok_or_else(|| err(file, sline, format!("bad shard count: {s}")))?;
            spec.mode = TranslatorMode::Sharded { shards: s };
        }
        (Some((line, m)), _) => {
            return Err(err(
                file,
                line,
                format!("bad enum variant `{m}` for key `mode` (want `single` or `sharded`)"),
            ));
        }
    }

    // Finalize the RoCE-hop queue discipline.
    if link_discipline.is_some() || link_xoff.is_some() || link_xon.is_some() {
        let dflt = match LinkConfig::dc_100g_lossless().discipline {
            QueueDiscipline::Lossless { xoff_bytes, xon_bytes } => (xoff_bytes, xon_bytes),
            QueueDiscipline::Lossy => unreachable!(),
        };
        match link_discipline {
            Some((_, ref d)) if d == "lossy" => {
                if link_xoff.is_some() || link_xon.is_some() {
                    let line = link_discipline.map(|(l, _)| l).unwrap_or(0);
                    return Err(err(
                        file,
                        line,
                        "xoff_bytes/xon_bytes only apply to discipline = \"lossless\"",
                    ));
                }
                spec.congestion.rdma_link.discipline = QueueDiscipline::Lossy;
            }
            Some((_, ref d)) if d == "lossless" => {
                spec.congestion.rdma_link.discipline = QueueDiscipline::Lossless {
                    xoff_bytes: link_xoff.unwrap_or(dflt.0),
                    xon_bytes: link_xon.unwrap_or(dflt.1),
                };
            }
            Some((line, d)) => {
                return Err(err(
                    file,
                    line,
                    format!(
                        "bad enum variant `{d}` for key `discipline` (want `lossy` or `lossless`)"
                    ),
                ));
            }
            None => {
                // xoff/xon against the current discipline (must be lossless).
                match &mut spec.congestion.rdma_link.discipline {
                    QueueDiscipline::Lossless { xoff_bytes, xon_bytes } => {
                        if let Some(x) = link_xoff {
                            *xoff_bytes = x;
                        }
                        if let Some(x) = link_xon {
                            *xon_bytes = x;
                        }
                    }
                    QueueDiscipline::Lossy => {
                        return Err(err(
                            file,
                            0,
                            "xoff_bytes/xon_bytes only apply to discipline = \"lossless\"",
                        ));
                    }
                }
            }
        }
    }

    // Sweep-level consistency: axes that poke a fault plan need one, and
    // the cross-mode invariant needs modes to compare.
    for axis in &sweep {
        if matches!(axis, Axis::Victim(_) | Axis::KillAt(_)) && spec.collectors.fault.is_none() {
            return Err(err(
                file,
                0,
                format!("sweep axis `{}` needs a [collectors.fault] section", axis.name()),
            ));
        }
    }
    if invariants.cross_mode_memory_equal {
        let modes = sweep.iter().find_map(|a| match a {
            Axis::Mode(m) => Some(m.len()),
            _ => None,
        });
        if modes.unwrap_or(0) < 2 {
            return Err(err(
                file,
                0,
                "invariant `cross_mode_memory_equal` needs a sweep `mode` axis with >= 2 values",
            ));
        }
    }

    Ok(CorpusDoc { file: file.to_string(), spec, tags, sweep, invariants })
}

/// Parse **and validate**: the base spec and every expanded sweep cell go
/// through [`ScenarioSpec::validate`]; the first rejection is reported with
/// the offending cell's coordinates.
pub fn load_str(file: &str, text: &str) -> Result<CorpusDoc, ParseError> {
    let doc = parse_str(file, text)?;
    doc.spec
        .validate()
        .map_err(|m| err(file, 0, format!("invalid base spec: {m}")))?;
    for cell in doc.cells() {
        cell.spec.validate().map_err(|m| {
            err(file, 0, format!("invalid sweep cell [{}]: {m}", cell.id()))
        })?;
    }
    Ok(doc)
}

/// [`load_str`] over a file on disk.
pub fn load_file(path: &std::path::Path) -> Result<CorpusDoc, ParseError> {
    let name = path.display().to_string();
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(&name, 0, format!("cannot read: {e}")))?;
    load_str(&name, &text)
}

/// Load every `*.toml` under `dir` (non-recursive), sorted by file name so
/// corpus iteration order — and therefore sweep sampling — is
/// deterministic. Any unreadable or invalid file fails the whole load.
pub fn load_dir(dir: &std::path::Path) -> Result<Vec<CorpusDoc>, ParseError> {
    let name = dir.display().to_string();
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| err(&name, 0, format!("cannot read dir: {e}")))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml") && p.is_file())
        .collect();
    paths.sort();
    paths.iter().map(|p| load_file(p)).collect()
}

// ---------------------------------------------------------------------------
// Rendering: ScenarioSpec -> document text
// ---------------------------------------------------------------------------

/// Render `spec` as a complete corpus document body: every field of every
/// section, explicitly. [`parse_str`] on the output yields `spec` exactly
/// (the round-trip property test pins this). Sweep/invariant/tag sections
/// are corpus-file metadata, not spec state, so they are not emitted —
/// append them to the returned string when authoring a corpus file.
pub fn render_spec(spec: &ScenarioSpec) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let f = |v: f64| format!("{v:?}");
    writeln!(s, "fat_tree_k = {}", spec.fat_tree_k).unwrap();
    writeln!(s, "reporters = {}", spec.reporters).unwrap();
    writeln!(s, "ops_per_reporter = {}", spec.ops_per_reporter).unwrap();
    writeln!(s, "seed = {}", spec.seed).unwrap();
    writeln!(s, "tick_ns = {}", spec.tick_ns).unwrap();
    writeln!(s, "reports_per_tick = {}", spec.reports_per_tick).unwrap();
    writeln!(s, "drain_ns = {}", spec.drain_ns).unwrap();
    match spec.mode {
        TranslatorMode::SingleThreaded => writeln!(s, "mode = \"single\"").unwrap(),
        TranslatorMode::Sharded { shards } => {
            writeln!(s, "mode = \"sharded\"").unwrap();
            writeln!(s, "shards = {shards}").unwrap();
        }
    }

    let t = &spec.traffic;
    writeln!(s, "\n[traffic]").unwrap();
    writeln!(s, "key_write = {}", t.key_write).unwrap();
    writeln!(s, "append = {}", t.append).unwrap();
    writeln!(s, "key_increment = {}", t.key_increment).unwrap();
    writeln!(s, "postcarding = {}", t.postcarding).unwrap();
    writeln!(s, "kw_redundancy = {}", t.kw_redundancy).unwrap();
    writeln!(s, "inc_redundancy = {}", t.inc_redundancy).unwrap();
    writeln!(s, "kw_keys = {}", t.kw_keys).unwrap();
    writeln!(s, "inc_keys = {}", t.inc_keys).unwrap();
    writeln!(s, "append_lists = {}", t.append_lists).unwrap();
    writeln!(s, "slot_disjoint_keys = {}", t.slot_disjoint_keys).unwrap();
    writeln!(s, "kw_write_once = {}", t.kw_write_once).unwrap();
    writeln!(s, "inc_slot_disjoint = {}", t.inc_slot_disjoint).unwrap();

    for (name, cfg) in [
        ("report_uplinks", &spec.faults.report_uplinks),
        ("fabric", &spec.faults.fabric),
        ("rdma_hop", &spec.faults.rdma_hop),
    ] {
        writeln!(s, "\n[faults.{name}]").unwrap();
        writeln!(s, "drop_chance = {}", f(cfg.drop_chance)).unwrap();
        writeln!(s, "corrupt_chance = {}", f(cfg.corrupt_chance)).unwrap();
        writeln!(s, "reorder_chance = {}", f(cfg.reorder_chance)).unwrap();
        writeln!(s, "duplicate_chance = {}", f(cfg.duplicate_chance)).unwrap();
        if let Some(limit) = cfg.size_limit {
            writeln!(s, "size_limit = {limit}").unwrap();
        }
    }

    let c = &spec.congestion;
    writeln!(s, "\n[congestion]").unwrap();
    writeln!(s, "nack_on_drop = {}", c.nack_on_drop).unwrap();
    if let Some(rl) = &c.rate_limit {
        writeln!(s, "\n[congestion.rate_limit]").unwrap();
        writeln!(s, "msgs_per_sec = {}", f(rl.msgs_per_sec)).unwrap();
        writeln!(s, "burst = {}", rl.burst).unwrap();
    }
    if let Some(rx) = &c.retransmit {
        writeln!(s, "\n[congestion.retransmit]").unwrap();
        writeln!(s, "window = {}", rx.window).unwrap();
        writeln!(s, "max_retries = {}", rx.max_retries).unwrap();
        writeln!(s, "pace_ns = {}", rx.pace_ns).unwrap();
    }
    writeln!(s, "\n[congestion.rdma_link]").unwrap();
    writeln!(s, "bandwidth_bps = {}", c.rdma_link.bandwidth_bps).unwrap();
    writeln!(s, "latency_ns = {}", c.rdma_link.latency_ns).unwrap();
    writeln!(s, "queue_bytes = {}", c.rdma_link.queue_bytes).unwrap();
    match c.rdma_link.discipline {
        QueueDiscipline::Lossy => writeln!(s, "discipline = \"lossy\"").unwrap(),
        QueueDiscipline::Lossless { xoff_bytes, xon_bytes } => {
            writeln!(s, "discipline = \"lossless\"").unwrap();
            writeln!(s, "xoff_bytes = {xoff_bytes}").unwrap();
            writeln!(s, "xon_bytes = {xon_bytes}").unwrap();
        }
    }

    let cp = &spec.collectors;
    writeln!(s, "\n[collectors]").unwrap();
    writeln!(s, "count = {}", cp.count).unwrap();
    writeln!(s, "timeout_ns = {}", cp.timeout_ns).unwrap();
    writeln!(s, "min_unacked = {}", cp.min_unacked).unwrap();
    writeln!(s, "ledger_capacity = {}", cp.ledger_capacity).unwrap();
    if let Some(fault) = &cp.fault {
        writeln!(s, "\n[collectors.fault]").unwrap();
        writeln!(s, "victim = {}", fault.victim).unwrap();
        writeln!(s, "kill_at_ns = {}", fault.kill_at_ns).unwrap();
        if let Some(rejoin) = fault.rejoin_at_ns {
            writeln!(s, "rejoin_at_ns = {rejoin}").unwrap();
        }
        writeln!(s, "spurious = {}", fault.spurious).unwrap();
    }
    if let Some(rb) = &spec.rebalance {
        writeln!(s, "\n[rebalance]").unwrap();
        writeln!(s, "start_at_ns = {}", rb.start_at_ns).unwrap();
        writeln!(s, "fence_capacity = {}", rb.fence_capacity).unwrap();
        writeln!(s, "ledger_capacity = {}", rb.ledger_capacity).unwrap();
        writeln!(s, "drain_batch = {}", rb.drain_batch).unwrap();
        writeln!(s, "retry_ns = {}", rb.retry_ns).unwrap();
        writeln!(s, "\n[rebalance.faults]").unwrap();
        writeln!(s, "drop_chance = {}", f(rb.faults.drop_chance)).unwrap();
        writeln!(s, "duplicate_chance = {}", f(rb.faults.duplicate_chance)).unwrap();
        writeln!(s, "reorder_chance = {}", f(rb.faults.reorder_chance)).unwrap();
    }
    if let Some(q) = &spec.query {
        writeln!(s, "\n[query]").unwrap();
        writeln!(s, "rate = {}", q.rate).unwrap();
        writeln!(s, "start_ns = {}", q.start_ns).unwrap();
        writeln!(s, "stop_ns = {}", q.stop_ns).unwrap();
        writeln!(s, "seed = {}", q.seed).unwrap();
        writeln!(s, "\n[query.mix]").unwrap();
        writeln!(s, "key_write = {}", q.mix.key_write).unwrap();
        writeln!(s, "append = {}", q.mix.append).unwrap();
        writeln!(s, "key_increment = {}", q.mix.key_increment).unwrap();
        writeln!(s, "postcarding = {}", q.mix.postcarding).unwrap();
    }

    let tc = &spec.translator;
    writeln!(s, "\n[translator]").unwrap();
    writeln!(s, "postcard_cache_slots = {}", tc.postcard_cache_slots).unwrap();
    writeln!(s, "postcard_hops = {}", tc.postcard_hops).unwrap();
    writeln!(s, "postcard_bits = {}", tc.postcard_bits).unwrap();
    writeln!(s, "postcard_values = {}", tc.postcard_values).unwrap();
    writeln!(s, "postcard_redundancy = {}", tc.postcard_redundancy).unwrap();
    writeln!(s, "append_batch = {}", tc.append_batch).unwrap();
    writeln!(s, "mtu = {}", tc.mtu).unwrap();
    writeln!(s, "key_scratch_entries = {}", tc.key_scratch_entries).unwrap();
    if let Some(rl) = &tc.rate_limit {
        writeln!(s, "\n[translator.rate_limit]").unwrap();
        writeln!(s, "msgs_per_sec = {}", f(rl.msgs_per_sec)).unwrap();
        writeln!(s, "burst = {}", rl.burst).unwrap();
    }

    let sv = &spec.service;
    writeln!(s, "\n[service]").unwrap();
    writeln!(s, "kw_bytes = {}", sv.kw_bytes).unwrap();
    writeln!(s, "kw_value_bytes = {}", sv.kw_value_bytes).unwrap();
    writeln!(s, "postcard_bytes = {}", sv.postcard_bytes).unwrap();
    writeln!(s, "postcard_hops = {}", sv.postcard_hops).unwrap();
    writeln!(s, "postcard_bits = {}", sv.postcard_bits).unwrap();
    writeln!(s, "postcard_values = {}", sv.postcard_values).unwrap();
    writeln!(s, "append_lists = {}", sv.append_lists).unwrap();
    writeln!(s, "append_entries = {}", sv.append_entries).unwrap();
    writeln!(s, "append_entry_bytes = {}", sv.append_entry_bytes).unwrap();
    writeln!(s, "cms_slots = {}", sv.cms_slots).unwrap();
    writeln!(s, "max_redundancy = {}", sv.max_redundancy).unwrap();
    writeln!(s, "\n[service.nic]").unwrap();
    writeln!(s, "msg_rate = {}", f(sv.nic.msg_rate)).unwrap();
    writeln!(s, "line_rate_bps = {}", f(sv.nic.line_rate_bps)).unwrap();
    writeln!(s, "num_nics = {}", sv.nic.num_nics).unwrap();
    writeln!(s, "ack_coalesce = {}", sv.nic.ack_coalesce).unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CollectorPlan, FaultPlan};

    #[test]
    fn empty_document_is_the_default_spec() {
        let doc = load_str("empty.toml", "").unwrap();
        assert_eq!(doc.spec, ScenarioSpec::default());
        assert!(doc.tags.is_empty());
        assert!(doc.sweep.is_empty());
        assert!(!doc.invariants.any());
        assert_eq!(doc.cell_count(), 1);
        assert_eq!(doc.cells()[0].id(), "base");
    }

    #[test]
    fn presets_render_and_reparse_identically() {
        let presets: Vec<(&str, ScenarioSpec)> = vec![
            ("default", ScenarioSpec::default()),
            ("smoke", ScenarioSpec::smoke(TranslatorMode::SingleThreaded)),
            ("smoke4", ScenarioSpec::smoke(TranslatorMode::Sharded { shards: 4 })),
            ("congested", ScenarioSpec::congested(TranslatorMode::SingleThreaded)),
            ("failover", ScenarioSpec::failover(TranslatorMode::Sharded { shards: 4 })),
            ("rebalance", ScenarioSpec::rebalance(TranslatorMode::SingleThreaded)),
            ("query_under_load", ScenarioSpec::query_under_load(TranslatorMode::SingleThreaded)),
            (
                "query_under_load4",
                ScenarioSpec::query_under_load(TranslatorMode::Sharded { shards: 4 }),
            ),
            ("large", ScenarioSpec::large(TranslatorMode::SingleThreaded)),
        ];
        for (name, spec) in presets {
            let text = render_spec(&spec);
            let doc = parse_str(name, &text)
                .unwrap_or_else(|e| panic!("{name} failed to reparse: {e}"));
            assert_eq!(doc.spec, spec, "{name} did not round-trip");
        }
    }

    #[test]
    fn sweep_grid_expands_in_declaration_order() {
        let doc = load_str(
            "g.toml",
            "[traffic]\nslot_disjoint_keys = true\n\
             [sweep]\nseed = [1, 2]\nmode = [\"single\", \"sharded4\"]\n",
        )
        .unwrap();
        assert_eq!(doc.cell_count(), 4);
        let cells = doc.cells();
        let ids: Vec<String> = cells.iter().map(|c| c.id()).collect();
        assert_eq!(
            ids,
            [
                "seed=1,mode=single",
                "seed=1,mode=sharded4",
                "seed=2,mode=single",
                "seed=2,mode=sharded4"
            ]
        );
        assert_eq!(cells[1].spec.seed, 1);
        assert_eq!(cells[1].spec.mode, TranslatorMode::Sharded { shards: 4 });
        assert_eq!(cells[3].mode_group_id(), "seed=2");
        // Smoke cells: one per mode value, all other axes at first value.
        let smoke = doc.smoke_cells();
        assert_eq!(smoke.len(), 2);
        assert_eq!(smoke[0].id(), "seed=1,mode=single");
        assert_eq!(smoke[1].id(), "seed=1,mode=sharded4");
    }

    #[test]
    fn fault_axes_rewrite_the_report_path() {
        let doc = load_str("f.toml", "[sweep]\ndrop = [0.0, 0.1]\nreorder = [0.05]\n").unwrap();
        let cells = doc.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].spec.faults.report_uplinks.drop_chance, 0.1);
        assert_eq!(cells[1].spec.faults.fabric.drop_chance, 0.1);
        assert_eq!(cells[1].spec.faults.fabric.reorder_chance, 0.05);
        assert_eq!(cells[1].spec.faults.rdma_hop, dta_net::FaultConfig::none());
    }

    #[test]
    fn unknown_keys_and_sections_name_the_offender() {
        let e = load_str("bad.toml", "[traffic]\nkeywrite = 4\n").unwrap_err();
        assert!(e.message.contains("traffic.keywrite"), "{e}");
        assert_eq!(e.line, 2);
        let e = load_str("bad.toml", "[trafic]\nkey_write = 4\n").unwrap_err();
        assert!(e.message.contains("[trafic]"), "{e}");
        let e = load_str("bad.toml", "mode = \"turbo\"\n").unwrap_err();
        assert!(e.message.contains("turbo") && e.message.contains("mode"), "{e}");
        let e = load_str("bad.toml", "reporters = \"eight\"\n").unwrap_err();
        assert!(e.message.contains("reporters") && e.message.contains("integer"), "{e}");
    }

    #[test]
    fn invalid_cells_are_caught_at_load_time() {
        // Base spec is valid; the sharded cell would carry rdma_hop faults.
        let text = "[faults.rdma_hop]\ndrop_chance = 0.1\n\
                    [sweep]\nmode = [\"single\", \"sharded4\"]\n";
        let e = load_str("cell.toml", text).unwrap_err();
        assert!(e.message.contains("mode=sharded4"), "{e}");
        assert!(e.message.contains("rdma_hop"), "{e}");
        // parse_str alone accepts it — validation is load_str's job.
        assert!(parse_str("cell.toml", text).is_ok());
    }

    #[test]
    fn victim_axis_requires_a_fault_plan() {
        let e = load_str("v.toml", "[sweep]\nvictim = [0, 1]\n").unwrap_err();
        assert!(e.message.contains("victim") && e.message.contains("collectors.fault"), "{e}");
    }

    #[test]
    fn cross_mode_invariant_requires_a_mode_axis() {
        let e = load_str("x.toml", "[invariants]\ncross_mode_memory_equal = true\n").unwrap_err();
        assert!(e.message.contains("cross_mode_memory_equal"), "{e}");
        assert!(load_str(
            "x.toml",
            "[traffic]\nslot_disjoint_keys = true\n\
             [sweep]\nmode = [\"single\", \"sharded2\"]\n\
             [invariants]\ncross_mode_memory_equal = true\n"
        )
        .is_ok());
    }

    #[test]
    fn victim_and_kill_axes_apply_to_the_fault_plan() {
        let text = "\
ops_per_reporter = 48
drain_ns = 600_000
[traffic]
key_write = 1
append = 0
key_increment = 1
postcarding = 0
kw_keys = 2048
slot_disjoint_keys = true
kw_write_once = true
inc_slot_disjoint = true
[collectors]
count = 3
timeout_ns = 8000
[collectors.fault]
victim = 1
kill_at_ns = 12_000
spurious = false
[service.nic]
ack_coalesce = 8
[sweep]
victim = [0, 2]
kill_at_ns = [9_000, 12_000]
";
        let doc = load_str("fo.toml", text).unwrap();
        assert_eq!(doc.spec, ScenarioSpec::failover(TranslatorMode::SingleThreaded));
        let cells = doc.cells();
        assert_eq!(cells.len(), 4);
        let f = cells[3].spec.collectors.fault.unwrap();
        assert_eq!((f.victim, f.kill_at_ns), (2, 12_000));
        assert_eq!(cells[3].id(), "victim=2,kill_at_ns=12000");
    }

    #[test]
    fn tags_parse_and_select() {
        let doc =
            load_str("t.toml", "tags = [\"cross_mode_identical\", \"grid\"]\n").unwrap();
        assert!(doc.has_tag("cross_mode_identical"));
        assert!(!doc.has_tag("nope"));
    }

    #[test]
    fn comments_and_underscores_are_tolerated() {
        let doc = load_str(
            "c.toml",
            "# a comment\nseed = 1_000_000 # trailing\n[collectors] # section comment\ncount = 1\n",
        )
        .unwrap();
        assert_eq!(doc.spec.seed, 1_000_000);
        assert_eq!(doc.spec.collectors, CollectorPlan::single());
    }

    #[test]
    fn document_level_validation_wraps_spec_validate() {
        // min_unacked at the coalescing floor: ScenarioSpec::validate's
        // message, wrapped with the file context.
        let text = "[traffic]\nappend = 0\npostcarding = 0\n\
                    [collectors]\ncount = 3\nmin_unacked = 2\n";
        let e = load_str("floor.toml", text).unwrap_err();
        assert_eq!(e.file, "floor.toml");
        assert!(e.message.contains("min_unacked"), "{e}");
    }

    #[test]
    fn faults_sections_cover_every_channel() {
        let doc = load_str(
            "f.toml",
            "[faults.report_uplinks]\ndrop_chance = 0.1\nsize_limit = 1500\n\
             [faults.fabric]\nreorder_chance = 0.2\n\
             [faults.rdma_hop]\nduplicate_chance = 0.3\n",
        )
        .unwrap();
        let want = FaultPlan {
            report_uplinks: dta_net::FaultConfig {
                drop_chance: 0.1,
                size_limit: Some(1500),
                ..dta_net::FaultConfig::none()
            },
            fabric: dta_net::FaultConfig {
                reorder_chance: 0.2,
                ..dta_net::FaultConfig::none()
            },
            rdma_hop: dta_net::FaultConfig {
                duplicate_chance: 0.3,
                ..dta_net::FaultConfig::none()
            },
        };
        assert_eq!(doc.spec.faults, want);
    }
}

//! # dta-sim — end-to-end scenario harness
//!
//! The paper pitches DTA at data-center scale: "in a K = 28 fat tree"
//! thousands of reporters stream telemetry toward translator-equipped ToRs
//! (§2). This crate turns that deployment into a single declarative value:
//! a [`ScenarioSpec`] names the fabric (`fat_tree_k`), the reporter fleet
//! and its traffic blend ([`TrafficMix`]), the per-link-class fault model
//! ([`FaultPlan`] — loss, reorder, duplication), the translator pipeline
//! ([`TranslatorMode`] — single-threaded over simulated RoCE, or the
//! sharded multi-threaded pipeline writing collector memory directly), and
//! one RNG seed. [`run_scenario`] assembles the deployment, drives it to
//! completion on the simulated clock, and returns a [`ScenarioReport`]
//! (per-primitive send counts, fabric/fault/link statistics, translator
//! and collector counters, a post-run query audit) plus the collector's
//! raw memory.
//!
//! Two properties make the harness useful as a *test* substrate rather
//! than just a demo:
//!
//! * **Bit-reproducibility** — the same spec yields the same report and
//!   the same collector bytes, every run. No wall clock, no OS entropy, no
//!   iteration-order dependence; the sharded pipeline's scheduling-
//!   dependent counters are excluded from the report by construction. In
//!   sharded mode, byte-level memory determinism additionally requires
//!   [`TrafficMix::slot_disjoint_keys`] (colliding-slot writes from
//!   different shards race by thread timing; single-threaded runs are
//!   unconditional).
//! * **Fault equivalence** — with [`TrafficMix::slot_disjoint_keys`] set,
//!   the final collector memory under a fault schedule is byte-identical
//!   between the single-threaded and N-shard translators, because both see
//!   the same delivered report sequence and sharding preserves per-key
//!   order (see `tests/scenario_suite.rs`).
//!
//! See `DESIGN.md` ("Scenario harness") for the determinism rules and how
//! to add a scenario.

pub mod corpus;
pub mod query;
pub mod scenario;
pub mod spec;
pub mod traffic;

pub use corpus::{
    load_dir, load_file, load_str, mode_label, parse_mode_label, parse_str, render_spec, Axis,
    Cell, CorpusDoc, InvariantSet, ParseError,
};

pub use query::{CollectorReaders, LatencyHistogram, QueryService, QueryStats};
pub use scenario::{
    memory_fingerprint, run_scenario, QueryOutcomes, ScenarioOutcome, ScenarioReport,
    COLLECTOR_IP, TRANSLATOR_IP,
};
pub use spec::{
    CollectorFaultPlan, CollectorPlan, CongestionPlan, FaultPlan, QueryMix, QueryPlan,
    RebalancePlan, ScenarioSpec, TrafficMix, TranslatorMode, MAX_LANES_PER_HOST,
};
pub use traffic::{generate, PrimitiveCounts, Workload};

//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] names everything a deployment-scale run depends on —
//! fabric shape, fleet size, traffic blend, fault plan, translator mode,
//! RNG seed — and nothing else. Two runs of the same spec produce the same
//! [`crate::ScenarioReport`] and the same collector memory, bit for bit:
//! the only randomness is the seeded generator threaded through workload
//! synthesis and per-link fault injectors, and the only clock is the
//! simulated one.

use dta_collector::ServiceConfig;
use dta_net::{FaultConfig, LinkConfig};
use dta_reporter::RetransmitPolicy;
use dta_translator::{MigrationFaults, RateLimiterConfig, TranslatorConfig};

/// Which translator pipeline fronts the collector's ToR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslatorMode {
    /// The single-threaded [`dta_translator::TranslatorNode`]: reports
    /// translate inline and the resulting RoCE packets traverse the
    /// simulated ToR→collector link (lossless, PFC).
    SingleThreaded,
    /// The multi-threaded [`dta_translator::ShardedTranslatorNode`]: the
    /// PR 2 pipeline (SPSC rings, per-shard translators, dedicated NIC
    /// endpoints) executes RDMA directly into the collector's striped
    /// memory — the intra-rack RoCE hop modeled at the memory level.
    Sharded {
        /// Worker shard count (≥ 1).
        shards: usize,
    },
}

/// Per-link-class fault configuration.
///
/// Classes rather than individual links: a scenario names the *policy*
/// ("reports cross an unreliable fabric"), and the harness derives one
/// deterministic injector per directed link from the scenario seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Applied to each reporter host's uplink (host → edge switch).
    pub report_uplinks: FaultConfig,
    /// Applied to every switch↔switch fabric link, both directions
    /// (edge↔aggregation, aggregation↔core).
    pub fabric: FaultConfig,
    /// Applied to the ToR → collector-host RoCE hop. Only meaningful under
    /// [`TranslatorMode::SingleThreaded`] (the sharded pipeline's RDMA hop
    /// is intra-rack and does not cross a simulated link).
    pub rdma_hop: FaultConfig,
}

impl FaultPlan {
    /// A fault-free fabric.
    pub fn none() -> Self {
        FaultPlan {
            report_uplinks: FaultConfig::none(),
            fabric: FaultConfig::none(),
            rdma_hop: FaultConfig::none(),
        }
    }

    /// The non-FIFO unreliable-channel model on the whole report path
    /// (uplinks + fabric): loss, pairwise reorder, duplicate delivery. The
    /// RoCE hop stays clean.
    pub fn unreliable_report_path(drop: f64, reorder: f64, duplicate: f64) -> Self {
        let cfg = FaultConfig::unreliable(drop, reorder, duplicate);
        FaultPlan { report_uplinks: cfg, fabric: cfg, rdma_hop: FaultConfig::none() }
    }
}

/// One fail-stop event against the collector fleet: collector `victim`
/// drops off the fabric at `kill_at_ns`, optionally rejoining later.
///
/// Detection depends on the translator mode. The single-threaded fleet
/// translator observes a genuine RDMA completion timeout (ACKs stop while
/// unacked work accumulates; see [`CollectorPlan::timeout_ns`] /
/// [`CollectorPlan::min_unacked`]). The sharded pipeline executes RDMA
/// in-process — there is no wire to time out — so the fail-stop surfaces
/// as a CM teardown event delivered to the fleet node, the software
/// analogue of an RDMA_CM `DISCONNECT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorFaultPlan {
    /// Index of the collector to kill (< [`CollectorPlan::count`]).
    pub victim: u32,
    /// Simulated time of the fail-stop, in nanoseconds.
    pub kill_at_ns: u64,
    /// When set, the victim rejoins the fabric at this time (>
    /// `kill_at_ns`) and the routing table re-admits it at a bumped epoch.
    pub rejoin_at_ns: Option<u64>,
    /// A *spurious* failover: the translator is told the victim died but
    /// the node stays up. Exercises replay idempotence — the re-routed
    /// writes must not double-apply anywhere queries look. Mutually
    /// exclusive with `rejoin_at_ns`.
    pub spurious: bool,
}

impl CollectorFaultPlan {
    /// Kill `victim` at `kill_at_ns`, no rejoin.
    pub fn kill(victim: u32, kill_at_ns: u64) -> Self {
        CollectorFaultPlan { victim, kill_at_ns, rejoin_at_ns: None, spurious: false }
    }
}

/// A scheduled live rebalance: after the fault plan's victim rejoins, the
/// fleet migrates the victim's key range back from its failover owner under
/// an epoch fence (see `dta_translator::rebalance`). The plan names *when*
/// the handoff starts and how the migration machinery is sized; the victim
/// is always the rejoined collector of [`CollectorFaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalancePlan {
    /// Simulated time the fence goes up (must be after
    /// [`CollectorFaultPlan::rejoin_at_ns`] — there is nothing to migrate
    /// back to before the victim is readmitted).
    pub start_at_ns: u64,
    /// Bound on concurrently *active* (non-terminal) fence entries.
    /// Eviction is counted, never silent (> 0).
    pub fence_capacity: usize,
    /// Bound on drain reads in flight ([`dta_translator::MigrationLedger`],
    /// > 0).
    pub ledger_capacity: usize,
    /// Entries armed / drained per pump tick.
    pub drain_batch: usize,
    /// Retransmit timer for unacknowledged migration ops.
    pub retry_ns: u64,
    /// Fault injection on the migration path itself (drop / duplicate /
    /// pairwise-reorder dice over migration reads and zero-writes).
    pub faults: MigrationFaults,
}

impl Default for RebalancePlan {
    fn default() -> Self {
        RebalancePlan {
            start_at_ns: 36_000,
            fence_capacity: 1024,
            ledger_capacity: 256,
            drain_batch: 16,
            retry_ns: 8_000,
            faults: MigrationFaults::default(),
        }
    }
}

/// The collector tier of the deployment: how many `CollectorService`
/// nodes stand behind the ToR, the translator-side failover tuning, and
/// an optional fail-stop fault against one of them.
///
/// The default is a **single collector and no fault machinery** — byte-
/// for-byte the deployment every existing scenario has always built. The
/// multi-collector fabric (routing table, in-flight ledger, failover
/// state machine) only assembles when `count > 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorPlan {
    /// Collector fleet size (>= 1). Reports partition across the fleet by
    /// key checksum (collector-level salt of
    /// [`dta_translator::Partitioner`]); shard dispatch inside each
    /// collector's pipeline keeps its own domain-separated salt.
    pub count: u32,
    /// Optional fail-stop fault (requires `count >= 2`).
    pub fault: Option<CollectorFaultPlan>,
    /// Completion-timeout horizon: a collector with `min_unacked`+ sends
    /// outstanding and no ACK progress for this long is declared dead
    /// (single-threaded fleet translator only).
    pub timeout_ns: u64,
    /// Minimum outstanding (unacknowledged) sends before the timeout can
    /// fire. Must exceed the collector NIC's worst-case ACK coalescing
    /// backlog (`ack_coalesce - 1` per connected service QP), or a live
    /// but momentarily quiet collector would be declared dead.
    pub min_unacked: u64,
    /// Bound on the translator-side in-flight ledger, per collector
    /// (entries beyond it evict oldest-first and are counted, never
    /// silently dropped).
    pub ledger_capacity: usize,
}

impl CollectorPlan {
    /// The historical single-collector deployment (the default).
    pub fn single() -> Self {
        CollectorPlan {
            count: 1,
            fault: None,
            timeout_ns: 40_000,
            min_unacked: 24,
            ledger_capacity: 4096,
        }
    }

    /// A fleet of `count` collectors, no fault.
    pub fn fleet(count: u32) -> Self {
        CollectorPlan { count, ..CollectorPlan::single() }
    }
}

impl Default for CollectorPlan {
    fn default() -> Self {
        CollectorPlan::single()
    }
}

/// The reporter fleet's traffic blend.
///
/// Weights are relative (they need not sum to anything particular); each
/// op draws its primitive from the weighted distribution. A Postcarding op
/// expands into a full `postcard_hops`-hop flow emitted contiguously by one
/// reporter, so one op may frame several report packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficMix {
    /// Key-Write weight.
    pub key_write: u32,
    /// Append weight.
    pub append: u32,
    /// Key-Increment weight.
    pub key_increment: u32,
    /// Postcarding weight.
    pub postcarding: u32,
    /// Key-Write redundancy `N`.
    pub kw_redundancy: u8,
    /// Key-Increment redundancy `N`.
    pub inc_redundancy: u8,
    /// Key-Write key-pool size (keys are reused across ops: rewrites
    /// exercise last-writer-wins).
    pub kw_keys: usize,
    /// Draw Key-Write keys round-robin from the pool instead of randomly
    /// with replacement, so (while the pool outlasts the op count) every
    /// key is written at most once. Retransmission reorders deliveries;
    /// a write-once workload is the one whose final memory is invariant
    /// under that reordering — the congestion-recovery scenarios need it
    /// to converge byte-identically to their unthrottled twin.
    pub kw_write_once: bool,
    /// Key-Increment key-pool size.
    pub inc_keys: usize,
    /// Append lists used (must not exceed the collector's configured list
    /// count).
    pub append_lists: u32,
    /// Constrain generated key pools so that no two keys share a store
    /// slot (Key-Write redundancy slots, Postcarding chunks) or a
    /// postcard-cache row. This removes the one behaviour sharding
    /// intentionally does not preserve — cross-key last-writer-wins races
    /// on colliding slots — making single-vs-sharded runs byte-comparable.
    /// Fault-equivalence tests set it; throughput scenarios need not.
    pub slot_disjoint_keys: bool,
    /// Also draw Key-Increment keys slot-disjointly over the collector's
    /// CMS geometry. Increments commute, so ordinary scenarios never need
    /// this — but collector-failover scenarios compare a bytewise *merge*
    /// of surviving collector regions against a no-failure twin, and two
    /// keys sharing a CMS counter while living on different collectors
    /// would make that merge lossy. Off by default.
    pub inc_slot_disjoint: bool,
}

impl Default for TrafficMix {
    fn default() -> Self {
        TrafficMix {
            key_write: 40,
            append: 25,
            key_increment: 20,
            postcarding: 15,
            kw_redundancy: 2,
            inc_redundancy: 2,
            kw_keys: 256,
            inc_keys: 64,
            append_lists: 8,
            slot_disjoint_keys: false,
            kw_write_once: false,
            inc_slot_disjoint: false,
        }
    }
}

impl TrafficMix {
    /// Sum of the primitive weights.
    pub fn total_weight(&self) -> u64 {
        self.key_write as u64
            + self.append as u64
            + self.key_increment as u64
            + self.postcarding as u64
    }
}

/// The query stream's primitive blend. Weights are relative, like
/// [`TrafficMix`]; a primitive queried with weight 0 is never drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryMix {
    /// Key-Write plurality-read weight.
    pub key_write: u32,
    /// Append tail-poll weight.
    pub append: u32,
    /// Key-Increment estimate weight.
    pub key_increment: u32,
    /// Postcarding cache-read weight.
    pub postcarding: u32,
}

impl Default for QueryMix {
    fn default() -> Self {
        QueryMix { key_write: 40, append: 25, key_increment: 20, postcarding: 15 }
    }
}

impl QueryMix {
    /// Sum of the primitive weights.
    pub fn total_weight(&self) -> u64 {
        self.key_write as u64
            + self.append as u64
            + self.key_increment as u64
            + self.postcarding as u64
    }
}

/// An online query service co-running with the write phase (§6.5: the
/// collector answers operator queries from host memory while the fabric
/// keeps writing into it).
///
/// The harness stands up a query-service node that, at every reporter-tick
/// boundary inside `[start_ns, stop_ns)`, quiesces the translator pipeline,
/// takes a per-epoch snapshot of collector memory (pooled
/// [`SnapshotBuf`](dta_rdma::mr::SnapshotBuf) images under the stripe
/// locks), and serves a seeded, paced stream of queries against the
/// snapshot through the unified
/// [`QueryEngine`](dta_collector::QueryEngine). Reads never touch live
/// memory, so the writer side of a query-loaded run is byte-identical to
/// its query-free twin — and the resulting
/// [`QueryStats`](crate::QueryStats) are a pure function of the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPlan {
    /// Queries issued per epoch (>= 1). An epoch is one reporter tick.
    pub rate: u32,
    /// Primitive blend of the stream.
    pub mix: QueryMix,
    /// Simulated time the stream starts (first epoch boundary at or after
    /// this).
    pub start_ns: u64,
    /// Simulated time the stream stops (exclusive; > `start_ns`).
    pub stop_ns: u64,
    /// Query-stream seed, independent of the workload seed so the same
    /// written memory can be probed by different streams.
    pub seed: u64,
}

impl Default for QueryPlan {
    fn default() -> Self {
        QueryPlan {
            rate: 16,
            mix: QueryMix::default(),
            start_ns: 4_000,
            stop_ns: 32_000,
            seed: 7,
        }
    }
}

/// The congestion-control loop of §5.2 as a scenario dimension: translator
/// rate limiting toward the collector NIC, NACKs back to reporters for
/// dropped reports, reporter-side retransmission, and the link class of
/// the PFC-protected ToR→collector RoCE hop.
///
/// The default plan is a **no-op**: no rate limiter, no NACK flags, no
/// retransmission, and the same `dc_100g_lossless` RoCE hop every scenario
/// has always used — so every existing spec (and the engine goldens) is
/// unchanged unless a scenario opts in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionPlan {
    /// Translator-side RDMA rate limiter (both modes; the sharded pipeline
    /// divides the budget exactly across shards). `None` = unlimited.
    pub rate_limit: Option<RateLimiterConfig>,
    /// Set the `nack_on_drop` flag on every generated report, and emit
    /// NACKs for rate-limited drops (in sharded mode this also schedules a
    /// drain tick on the translator ToR).
    pub nack_on_drop: bool,
    /// Reporter-side NACK-driven retransmission (requires `nack_on_drop`).
    pub retransmit: Option<RetransmitPolicy>,
    /// Link class of the ToR→collector RoCE hop. Defaults to the usual
    /// PFC-lossless 100G port; congestion scenarios can substitute a
    /// tighter lossless config (to surface PFC pauses) or a lossy one (to
    /// demonstrate why the RDMA hop must not be).
    pub rdma_link: LinkConfig,
}

impl CongestionPlan {
    /// The no-op plan (the default).
    pub fn none() -> Self {
        CongestionPlan {
            rate_limit: None,
            nack_on_drop: false,
            retransmit: None,
            rdma_link: LinkConfig::dc_100g_lossless(),
        }
    }

    /// A closed congestion loop: rate limiting at the translator, NACKs on
    /// drop, and reporter retransmission under `policy`.
    pub fn closed_loop(rate_limit: RateLimiterConfig, policy: RetransmitPolicy) -> Self {
        CongestionPlan {
            rate_limit: Some(rate_limit),
            nack_on_drop: true,
            retransmit: Some(policy),
            ..CongestionPlan::none()
        }
    }
}

impl Default for CongestionPlan {
    fn default() -> Self {
        CongestionPlan::none()
    }
}

/// Most reporters one host will co-host as fleet lanes.
pub const MAX_LANES_PER_HOST: u32 = 64;

/// A complete end-to-end deployment description.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Fat-tree port count `k` (even, ≥ 2). The collector lives on host
    /// (pod 0, edge 0, host 0); its edge switch is the translator ToR.
    pub fat_tree_k: u32,
    /// Reporter fleet size. Reporters are placed round-robin over the
    /// non-collector hosts in deterministic (pod, edge, host) order; a
    /// fleet larger than the host count co-locates reporters as extra
    /// *lanes* of the per-host [`dta_reporter::ReporterFleetNode`] (each
    /// lane a full reporter with its own source IP, paced independently) —
    /// this is how a K=8 fabric of 127 usable hosts carries a
    /// 1000+-reporter fleet.
    pub reporters: u32,
    /// Ops each reporter performs (a Postcarding op frames several report
    /// packets).
    pub ops_per_reporter: u32,
    /// Traffic blend.
    pub traffic: TrafficMix,
    /// Per-link-class fault configuration.
    pub faults: FaultPlan,
    /// Congestion-control loop configuration (no-op by default).
    pub congestion: CongestionPlan,
    /// Collector tier: fleet size, failover tuning, optional fail-stop
    /// fault (single collector, no fault by default).
    pub collectors: CollectorPlan,
    /// Optional post-rejoin key-range migration back to the rejoined
    /// collector (requires `collectors.fault` with a rejoin; `None` by
    /// default).
    pub rebalance: Option<RebalancePlan>,
    /// Optional online query stream served concurrently with the write
    /// phase (`None` by default — no query service, no `query` section in
    /// the report).
    pub query: Option<QueryPlan>,
    /// Translator pipeline at the ToR.
    pub mode: TranslatorMode,
    /// Translator sizing (shared by both modes; the sharded mode clones it
    /// per shard).
    pub translator: TranslatorConfig,
    /// Collector sizing.
    pub service: ServiceConfig,
    /// Master seed: workload synthesis and every link's fault injector
    /// derive from it.
    pub seed: u64,
    /// Reporter pacing period in simulated nanoseconds.
    pub tick_ns: u64,
    /// Reports each reporter emits per tick.
    pub reports_per_tick: usize,
    /// Settle margin (ns) between the last scheduled emission and the
    /// translator flush, and again between the flush and the end of the
    /// run — must exceed the worst-case multi-hop delivery delay.
    pub drain_ns: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            fat_tree_k: 4,
            reporters: 8,
            ops_per_reporter: 32,
            traffic: TrafficMix::default(),
            faults: FaultPlan::none(),
            congestion: CongestionPlan::none(),
            collectors: CollectorPlan::single(),
            rebalance: None,
            query: None,
            mode: TranslatorMode::SingleThreaded,
            translator: TranslatorConfig::default(),
            service: ServiceConfig::default(),
            seed: 1,
            tick_ns: 4_000,
            reports_per_tick: 8,
            drain_ns: 300_000,
        }
    }
}

impl ScenarioSpec {
    /// Check internal consistency; returns a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.fat_tree_k < 2 || !self.fat_tree_k.is_multiple_of(2) {
            return Err(format!("fat_tree_k must be even and >= 2, got {}", self.fat_tree_k));
        }
        let hosts = self.fat_tree_k * (self.fat_tree_k / 2) * (self.fat_tree_k / 2);
        if self.collectors.count == 0 {
            return Err("need at least one collector".into());
        }
        if self.collectors.count >= hosts {
            return Err(format!(
                "{} collectors leave no host for reporters (fabric has {})",
                self.collectors.count, hosts
            ));
        }
        let usable = hosts - self.collectors.count; // collectors occupy hosts
        if self.reporters == 0 {
            return Err("fleet needs at least one reporter".into());
        }
        // Lanes are capped so a single host tick cannot burst an
        // unbounded packet train (and a typo'd fleet size fails loudly).
        let lanes = self.reporters.div_ceil(usable);
        if lanes > MAX_LANES_PER_HOST {
            return Err(format!(
                "{} reporters over {} usable hosts is {} lanes/host (max {})",
                self.reporters, usable, lanes, MAX_LANES_PER_HOST
            ));
        }
        if self.traffic.total_weight() == 0 {
            return Err("traffic mix has zero total weight".into());
        }
        if self.traffic.kw_redundancy == 0 || self.traffic.inc_redundancy == 0 {
            return Err("redundancy must be >= 1".into());
        }
        if self.traffic.key_write > 0 && self.traffic.kw_keys == 0 {
            return Err("key_write weight set but kw_keys is 0".into());
        }
        if self.traffic.key_increment > 0 && self.traffic.inc_keys == 0 {
            return Err("key_increment weight set but inc_keys is 0".into());
        }
        if self.traffic.append > 0 {
            if self.traffic.append_lists == 0 {
                return Err("append weight set but append_lists is 0".into());
            }
            if self.service.append_lists > 0
                && self.traffic.append_lists > self.service.append_lists
            {
                return Err(format!(
                    "traffic uses {} append lists but the collector has {}",
                    self.traffic.append_lists, self.service.append_lists
                ));
            }
        }
        if let TranslatorMode::Sharded { shards } = self.mode {
            if shards == 0 {
                return Err("sharded mode needs at least one shard".into());
            }
            // The sharded pipeline's RDMA hop is intra-rack (shard NIC
            // endpoints write collector memory in-process): a fault plan
            // on the simulated ToR→collector link would silently apply to
            // nothing. Reject it instead of ignoring it.
            if !self.faults.rdma_hop.is_none() {
                return Err("faults.rdma_hop is meaningless under TranslatorMode::Sharded: \
                     the RDMA hop does not cross a simulated link"
                    .into());
            }
        }
        if self.collectors.count > 1 {
            // The fleet translators replay Key-Write / Key-Increment from
            // the in-flight ledger; Append batches and Postcarding cache
            // rows are translator-held state that dies with a connection
            // and cannot be replayed, so a fleet scenario excludes them.
            if self.traffic.append > 0 || self.traffic.postcarding > 0 {
                return Err("multi-collector scenarios carry Key-Write/Key-Increment \
                     traffic only: Append and Postcarding cannot be replayed \
                     across a failover"
                    .into());
            }
            // The fleet nodes do not implement the reporter NACK loop.
            if self.congestion.rate_limit.is_some()
                || self.congestion.nack_on_drop
                || self.congestion.retransmit.is_some()
            {
                return Err("multi-collector scenarios do not support the \
                     congestion loop (rate_limit / nack_on_drop / retransmit)"
                    .into());
            }
            if !self.faults.rdma_hop.is_none() {
                return Err("faults.rdma_hop names a single ToR→collector link; \
                     use collectors.fault for collector-tier faults".into());
            }
            if self.collectors.timeout_ns == 0
                || self.collectors.min_unacked == 0
                || self.collectors.ledger_capacity == 0
            {
                return Err("collector failover tuning must be positive".into());
            }
            // A healthy collector may legitimately sit on `ack_coalesce - 1`
            // unanswered sends per service QP (KW + INC = 2 QPs). A floor
            // at or below that backlog turns ordinary coalescing silence
            // into a false fail-stop verdict.
            let coalesce_backlog = 2 * (u64::from(self.service.nic.ack_coalesce) - 1);
            if self.collectors.min_unacked <= coalesce_backlog {
                return Err(format!(
                    "collectors.min_unacked ({}) must exceed the worst-case \
                     ACK-coalescing backlog of 2 QPs x (ack_coalesce - 1) = {}",
                    self.collectors.min_unacked, coalesce_backlog
                ));
            }
        }
        if let Some(fault) = &self.collectors.fault {
            if self.collectors.count < 2 {
                return Err("a collector fault needs a fleet of >= 2 (survivors \
                     must exist to re-route to)"
                    .into());
            }
            if fault.victim >= self.collectors.count {
                return Err(format!(
                    "collector fault victim {} out of range (fleet of {})",
                    fault.victim, self.collectors.count
                ));
            }
            if fault.kill_at_ns == 0 {
                return Err("collector kill_at_ns must be positive".into());
            }
            if let Some(rejoin) = fault.rejoin_at_ns {
                if rejoin <= fault.kill_at_ns {
                    return Err("collector rejoin must come after the kill".into());
                }
                if fault.spurious {
                    return Err("a spurious failover never removed the node: \
                         rejoin_at_ns does not apply"
                        .into());
                }
            }
        }
        if let Some(rb) = &self.rebalance {
            // A rebalance migrates the victim's key range *back* to it:
            // without a fault-and-rejoin there is no churn to heal.
            let Some(fault) = &self.collectors.fault else {
                return Err("rebalance configured but collectors.fault is None: \
                     there is no membership churn to rebalance after"
                    .into());
            };
            let Some(rejoin) = fault.rejoin_at_ns else {
                return Err("rebalance needs collectors.fault.rejoin_at_ns: \
                     the migration target is the rejoined victim".into());
            };
            if rb.start_at_ns <= rejoin {
                return Err(format!(
                    "rebalance.start_at_ns ({}) must come after the rejoin ({})",
                    rb.start_at_ns, rejoin
                ));
            }
            if rb.fence_capacity == 0 || rb.ledger_capacity == 0 {
                return Err("rebalance fence/ledger capacities must be >= 1 \
                     (a zero bound would evict every entry on arrival)"
                    .into());
            }
            if rb.drain_batch == 0 {
                return Err("rebalance.drain_batch must be >= 1".into());
            }
        }
        if self.tick_ns == 0 || self.reports_per_tick == 0 {
            return Err("pacing must be positive".into());
        }
        if let Some(q) = &self.query {
            if q.rate == 0 {
                return Err("query.rate must be >= 1".into());
            }
            if q.stop_ns <= q.start_ns {
                return Err(format!(
                    "query window is empty: stop_ns ({}) must exceed start_ns ({})",
                    q.stop_ns, q.start_ns
                ));
            }
            if q.mix.total_weight() == 0 {
                return Err("query mix has zero total weight".into());
            }
            // The stream draws its keys from the workload's ledgered
            // pools; querying a primitive the traffic never writes would
            // sample an empty pool.
            for (name, qw, tw) in [
                ("key_write", q.mix.key_write, self.traffic.key_write),
                ("append", q.mix.append, self.traffic.append),
                ("key_increment", q.mix.key_increment, self.traffic.key_increment),
                ("postcarding", q.mix.postcarding, self.traffic.postcarding),
            ] {
                if qw > 0 && tw == 0 {
                    return Err(format!(
                        "query mix weights {name} but the traffic mix never \
                         writes it (weight 0): the query pool would be empty"
                    ));
                }
            }
            // The query service routes with an epoch-0 routing table
            // captured at build time; a mid-run fail-stop would silently
            // de-synchronize reader and writer routing.
            if self.collectors.fault.is_some() {
                return Err("query plans do not support collector faults: the \
                     query service routes with the epoch-0 table"
                    .into());
            }
            // Per-epoch snapshots are taken after a pipeline quiesce; the
            // quiesce fixes *when* writes land, but cross-key slot races
            // inside an epoch are still shard-order dependent, so sharded
            // query runs additionally need collision-free pools (the same
            // rule as cross-mode comparisons).
            if matches!(self.mode, TranslatorMode::Sharded { .. })
                && !self.traffic.slot_disjoint_keys
            {
                return Err("query plans under TranslatorMode::Sharded require \
                     traffic.slot_disjoint_keys for bit-reproducible epochs"
                    .into());
            }
        }
        if let Some(policy) = &self.congestion.retransmit {
            if !self.congestion.nack_on_drop {
                return Err("retransmit configured but nack_on_drop is off: \
                     reporters would never learn of a drop"
                    .into());
            }
            if policy.window == 0 {
                return Err("retransmit window must be >= 1".into());
            }
            if policy.max_retries == 0 {
                return Err("retransmit max_retries must be >= 1".into());
            }
        }
        if self.congestion.nack_on_drop && self.congestion.rate_limit.is_none() {
            return Err("nack_on_drop without a rate limiter can never fire".into());
        }
        if self.traffic.kw_write_once {
            // Worst case every op is a Key-Write: the pool must cover it
            // or the round-robin draw silently wraps into rewrites.
            let worst = self.reporters as u64 * self.ops_per_reporter as u64;
            if (self.traffic.kw_keys as u64) < worst {
                return Err(format!(
                    "kw_write_once needs kw_keys >= reporters*ops ({} < {})",
                    self.traffic.kw_keys, worst
                ));
            }
        }
        Ok(())
    }

    /// Small smoke-test preset: K=4 fat tree, mixed traffic, no faults —
    /// also the workload the `scenario` bench phase in
    /// `BENCH_translator.json` measures. Pools are slot-disjoint so the
    /// preset is bit-reproducible in *both* translator modes (see
    /// [`TrafficMix::slot_disjoint_keys`]).
    pub fn smoke(mode: TranslatorMode) -> Self {
        ScenarioSpec {
            mode,
            traffic: TrafficMix { slot_disjoint_keys: true, ..TrafficMix::default() },
            ..ScenarioSpec::default()
        }
    }

    /// Congestion-loop preset: the K=4 fabric under a translator rate
    /// limit tight enough to drop a third or more of the offered load,
    /// with NACKs and reporter retransmission closing the loop — the
    /// `scenario_congested` bench phase and the congestion-recovery test
    /// workload. Traffic is Key-Write + Key-Increment only: Append batch
    /// slots and Postcarding cache rows do not survive single-report
    /// retransmission (a dropped batch write loses `B` entries but NACKs
    /// one seq), so a recovery scenario that must converge to the
    /// unthrottled run's memory excludes them; Key-Writes are write-once
    /// ([`TrafficMix::kw_write_once`]) so a retransmitted write cannot
    /// land behind a newer value for the same key, and Key-Increments
    /// commute. Under those two conditions recovery is *guaranteed*
    /// byte-identical for every seed, not pinned per seed.
    pub fn congested(mode: TranslatorMode) -> Self {
        ScenarioSpec {
            ops_per_reporter: 24,
            traffic: TrafficMix {
                key_write: 1,
                append: 0,
                key_increment: 1,
                postcarding: 0,
                kw_keys: 2048,
                slot_disjoint_keys: true,
                kw_write_once: true,
                ..TrafficMix::default()
            },
            congestion: CongestionPlan::closed_loop(
                RateLimiterConfig { msgs_per_sec: 10e6, burst: 64 },
                RetransmitPolicy { window: 1024, max_retries: 8, pace_ns: 20_000 },
            ),
            mode,
            // Headroom for the retransmit waves (each paced 20us apart)
            // to land before the run's deadline.
            drain_ns: 600_000,
            ..ScenarioSpec::default()
        }
    }

    /// Collector-failover preset: the K=4 fabric with a 3-collector fleet
    /// and a fail-stop kill of collector 1 mid-emission — the
    /// `scenario_failover` bench phase and the failover-suite workload.
    /// Traffic is Key-Write + Key-Increment only (the two primitives whose
    /// replay is order-invariant: write-once KW is idempotent by value,
    /// increments commute), with *both* key pools slot-disjoint so the
    /// surviving fleet's merged memory is byte-comparable against a
    /// same-seed run that never had the failure. The collector NICs ACK
    /// every 8th packet (instead of the BlueField default 64) so the
    /// completion-timeout detector works against a tight backlog bound:
    /// `min_unacked = 24 > 2 service QPs × 7 coalesced`.
    pub fn failover(mode: TranslatorMode) -> Self {
        let mut spec = ScenarioSpec {
            ops_per_reporter: 48,
            traffic: TrafficMix {
                key_write: 1,
                append: 0,
                key_increment: 1,
                postcarding: 0,
                kw_keys: 2048,
                slot_disjoint_keys: true,
                kw_write_once: true,
                inc_slot_disjoint: true,
                ..TrafficMix::default()
            },
            collectors: CollectorPlan {
                // Kill 1 of 3 at 12us — mid-way through the ~28us emission
                // window, so reports for the victim's key range are in
                // flight on both sides of the fail-stop. The 8us timeout
                // puts single-threaded detection around 20-24us, still
                // inside the window: the suite wants both live re-routing
                // *and* ledger replay in the same run. `min_unacked` alone
                // keeps quiet-but-live collectors safe, so the short
                // horizon cannot false-positive a healthy node.
                fault: Some(CollectorFaultPlan::kill(1, 12_000)),
                timeout_ns: 8_000,
                ..CollectorPlan::fleet(3)
            },
            mode,
            // Headroom for detection (timeout_ns past the kill) and the
            // replayed writes to land before the flush.
            drain_ns: 600_000,
            ..ScenarioSpec::default()
        };
        spec.service.nic = spec.service.nic.with_ack_coalesce(8);
        spec
    }

    /// Rebalance preset: the failover fleet with a rejoin and a scheduled
    /// key-range migration back to the victim — the `scenario_rebalance`
    /// bench phase and the rebalance-suite workload. Timeline: kill at
    /// 12us, rejoin at 28us, fence up at 36us; `ops_per_reporter` is
    /// doubled versus the failover preset so emission (~52us of paced
    /// traffic) is still live through the whole fence/drain window — the
    /// suite wants double-writes and increment deferral exercised by real
    /// concurrent load, not a quiesced handoff.
    pub fn rebalance(mode: TranslatorMode) -> Self {
        let mut spec = ScenarioSpec::failover(mode);
        spec.ops_per_reporter = 96;
        if let Some(fault) = &mut spec.collectors.fault {
            fault.rejoin_at_ns = Some(28_000);
        }
        spec.rebalance = Some(RebalancePlan::default());
        spec
    }

    /// Query-under-load preset: the smoke deployment with an online query
    /// service issuing 16 queries per tick across all four primitives
    /// while the reporters write — the `scenario_query` bench phases and
    /// the query-suite workload. The query window `[4us, 32us)` spans the
    /// whole ~20us emission window plus early drain, so most epochs read
    /// memory that is actively being written. Slot-disjoint pools (from
    /// the smoke preset) keep it bit-reproducible in both translator
    /// modes.
    pub fn query_under_load(mode: TranslatorMode) -> Self {
        ScenarioSpec { query: Some(QueryPlan::default()), ..ScenarioSpec::smoke(mode) }
    }

    /// Datacenter-scale preset: a K=8 fat tree (80 switches, 128 hosts)
    /// carrying a 1008-reporter fleet — 8 lanes on each of the 127
    /// non-collector hosts — with the default mixed traffic blend. This is
    /// the `scenario_large` bench phase and the CI K=8 smoke workload.
    /// Slot-disjoint pools keep it bit-reproducible in both translator
    /// modes; `ops_per_reporter` is small because the fleet, not the
    /// per-reporter depth, is what this scenario scales.
    pub fn large(mode: TranslatorMode) -> Self {
        ScenarioSpec {
            fat_tree_k: 8,
            reporters: 1008,
            ops_per_reporter: 4,
            mode,
            traffic: TrafficMix { slot_disjoint_keys: true, ..TrafficMix::default() },
            ..ScenarioSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_validates() {
        assert_eq!(ScenarioSpec::default().validate(), Ok(()));
        assert_eq!(ScenarioSpec::smoke(TranslatorMode::Sharded { shards: 4 }).validate(), Ok(()));
    }

    #[test]
    fn bad_specs_are_rejected() {
        let mut s = ScenarioSpec { fat_tree_k: 3, ..ScenarioSpec::default() };
        assert!(s.validate().is_err());
        s.fat_tree_k = 4;
        s.reporters = 0;
        assert!(s.validate().is_err());
        // 16 hosts, one is the collector: 16 reporters co-locate as a
        // second lane on one host; past the lane cap the spec is rejected.
        s.reporters = 16;
        assert_eq!(s.validate(), Ok(()));
        s.reporters = 15 * MAX_LANES_PER_HOST + 1;
        assert!(s.validate().is_err());
        s.reporters = 15;
        assert_eq!(s.validate(), Ok(()));
        s.traffic = TrafficMix { key_write: 0, append: 0, key_increment: 0, postcarding: 0, ..s.traffic };
        assert!(s.validate().is_err());
        let s = ScenarioSpec { mode: TranslatorMode::Sharded { shards: 0 }, ..ScenarioSpec::default() };
        assert!(s.validate().is_err());
        let mut s = ScenarioSpec::default();
        s.traffic.append_lists = s.service.append_lists + 1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn congestion_plans_validate() {
        use dta_reporter::RetransmitPolicy;
        use dta_translator::RateLimiterConfig;
        // The shipped congested preset is internally consistent.
        assert_eq!(ScenarioSpec::congested(TranslatorMode::SingleThreaded).validate(), Ok(()));
        assert_eq!(
            ScenarioSpec::congested(TranslatorMode::Sharded { shards: 4 }).validate(),
            Ok(())
        );
        // Retransmit without NACKs can never trigger.
        let mut s = ScenarioSpec::default();
        s.congestion.rate_limit = Some(RateLimiterConfig::bluefield2());
        s.congestion.retransmit = Some(RetransmitPolicy::default());
        assert!(s.validate().is_err());
        s.congestion.nack_on_drop = true;
        assert_eq!(s.validate(), Ok(()));
        // Degenerate retransmit policies fail loudly.
        s.congestion.retransmit = Some(RetransmitPolicy { window: 0, ..RetransmitPolicy::default() });
        assert!(s.validate().is_err());
        s.congestion.retransmit =
            Some(RetransmitPolicy { max_retries: 0, ..RetransmitPolicy::default() });
        assert!(s.validate().is_err());
        // NACK flags without a limiter are dead config.
        let mut s = ScenarioSpec::default();
        s.congestion.nack_on_drop = true;
        assert!(s.validate().is_err());
        // Write-once pools must cover the worst-case op count.
        let mut s = ScenarioSpec::congested(TranslatorMode::SingleThreaded);
        s.traffic.kw_keys = 8;
        assert!(s.validate().is_err());
    }

    #[test]
    fn rdma_hop_faults_rejected_under_sharded_mode() {
        // The sharded pipeline's RDMA hop never crosses a simulated link,
        // so a fault plan on it used to be silently meaningless. It must
        // be rejected, and the identical plan must stay valid in
        // single-threaded mode (where the hop is real).
        let mut s = ScenarioSpec::default();
        s.faults.rdma_hop = dta_net::FaultConfig::unreliable(0.1, 0.0, 0.0);
        assert_eq!(s.validate(), Ok(()));
        s.mode = TranslatorMode::Sharded { shards: 4 };
        let err = s.validate().unwrap_err();
        assert!(err.contains("rdma_hop"), "unexpected error: {err}");
    }

    #[test]
    fn collector_plans_validate() {
        // The shipped failover preset is internally consistent in both
        // modes.
        assert_eq!(ScenarioSpec::failover(TranslatorMode::SingleThreaded).validate(), Ok(()));
        assert_eq!(
            ScenarioSpec::failover(TranslatorMode::Sharded { shards: 4 }).validate(),
            Ok(())
        );
        // A fault needs survivors.
        let mut s = ScenarioSpec::default();
        s.collectors.fault = Some(CollectorFaultPlan::kill(0, 1_000));
        assert!(s.validate().is_err());
        s.collectors = CollectorPlan::fleet(3);
        // ...and a fleet needs replayable traffic (no Append/Postcarding).
        assert!(s.validate().is_err());
        s.traffic.append = 0;
        s.traffic.postcarding = 0;
        // The default NIC coalesces 64 ACKs: min_unacked 24 sits inside
        // ordinary coalescing silence and must be rejected as a
        // false-positive fail-stop detector.
        let err = s.validate().unwrap_err();
        assert!(err.contains("min_unacked"), "unexpected error: {err}");
        s.service.nic = s.service.nic.with_ack_coalesce(8);
        assert_eq!(s.validate(), Ok(()));
        // Victim must be in range, the kill must be scheduled, and a
        // rejoin must follow it.
        s.collectors.fault = Some(CollectorFaultPlan::kill(3, 1_000));
        assert!(s.validate().is_err());
        s.collectors.fault = Some(CollectorFaultPlan::kill(1, 0));
        assert!(s.validate().is_err());
        let mut f = CollectorFaultPlan::kill(1, 5_000);
        f.rejoin_at_ns = Some(4_000);
        s.collectors.fault = Some(f);
        assert!(s.validate().is_err());
        f.rejoin_at_ns = Some(9_000);
        s.collectors.fault = Some(f);
        assert_eq!(s.validate(), Ok(()));
        // Spurious failovers never removed the node: no rejoin to plan.
        f.spurious = true;
        s.collectors.fault = Some(f);
        assert!(s.validate().is_err());
        f.rejoin_at_ns = None;
        s.collectors.fault = Some(f);
        assert_eq!(s.validate(), Ok(()));
        // The fleet nodes opt out of the congestion loop.
        let mut s = ScenarioSpec::failover(TranslatorMode::SingleThreaded);
        s.congestion.rate_limit =
            Some(dta_translator::RateLimiterConfig { msgs_per_sec: 10e6, burst: 64 });
        assert!(s.validate().is_err());
        // Zero collectors / a fleet covering every host fail loudly.
        let mut s = ScenarioSpec::default();
        s.collectors.count = 0;
        assert!(s.validate().is_err());
        s.collectors.count = 16; // K=4 has exactly 16 hosts
        assert!(s.validate().is_err());
    }

    #[test]
    fn rebalance_plans_validate() {
        // The shipped rebalance preset is internally consistent in both
        // modes.
        assert_eq!(ScenarioSpec::rebalance(TranslatorMode::SingleThreaded).validate(), Ok(()));
        assert_eq!(
            ScenarioSpec::rebalance(TranslatorMode::Sharded { shards: 4 }).validate(),
            Ok(())
        );
        // A rebalance without any collector fault has no churn to heal.
        let mut s = ScenarioSpec::rebalance(TranslatorMode::SingleThreaded);
        s.collectors.fault = None;
        let err = s.validate().unwrap_err();
        assert!(err.contains("collectors.fault"), "unexpected error: {err}");
        // ...and without a rejoin there is no migration target.
        let mut s = ScenarioSpec::rebalance(TranslatorMode::SingleThreaded);
        s.collectors.fault.as_mut().unwrap().rejoin_at_ns = None;
        let err = s.validate().unwrap_err();
        assert!(err.contains("rejoin_at_ns"), "unexpected error: {err}");
        // The fence cannot go up before the victim is back.
        let mut s = ScenarioSpec::rebalance(TranslatorMode::SingleThreaded);
        s.rebalance.as_mut().unwrap().start_at_ns = 28_000;
        assert!(s.validate().is_err());
        s.rebalance.as_mut().unwrap().start_at_ns = 28_001;
        assert_eq!(s.validate(), Ok(()));
        // Zero-sized migration bounds would evict everything on arrival.
        let mut s = ScenarioSpec::rebalance(TranslatorMode::SingleThreaded);
        s.rebalance.as_mut().unwrap().fence_capacity = 0;
        assert!(s.validate().is_err());
        let mut s = ScenarioSpec::rebalance(TranslatorMode::SingleThreaded);
        s.rebalance.as_mut().unwrap().ledger_capacity = 0;
        assert!(s.validate().is_err());
        let mut s = ScenarioSpec::rebalance(TranslatorMode::SingleThreaded);
        s.rebalance.as_mut().unwrap().drain_batch = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn query_plans_validate() {
        // The shipped preset is internally consistent in both modes.
        assert_eq!(ScenarioSpec::query_under_load(TranslatorMode::SingleThreaded).validate(), Ok(()));
        assert_eq!(
            ScenarioSpec::query_under_load(TranslatorMode::Sharded { shards: 4 }).validate(),
            Ok(())
        );
        // Degenerate rates and empty windows fail loudly.
        let mut s = ScenarioSpec::query_under_load(TranslatorMode::SingleThreaded);
        s.query.as_mut().unwrap().rate = 0;
        assert!(s.validate().is_err());
        let mut s = ScenarioSpec::query_under_load(TranslatorMode::SingleThreaded);
        s.query.as_mut().unwrap().stop_ns = s.query.unwrap().start_ns;
        assert!(s.validate().is_err());
        // An all-zero mix never queries anything.
        let mut s = ScenarioSpec::query_under_load(TranslatorMode::SingleThreaded);
        s.query.as_mut().unwrap().mix =
            QueryMix { key_write: 0, append: 0, key_increment: 0, postcarding: 0 };
        assert!(s.validate().is_err());
        // Querying a primitive the traffic never writes samples an empty
        // pool.
        let mut s = ScenarioSpec::query_under_load(TranslatorMode::SingleThreaded);
        s.traffic.postcarding = 0;
        let err = s.validate().unwrap_err();
        assert!(err.contains("postcarding"), "unexpected error: {err}");
        s.query.as_mut().unwrap().mix.postcarding = 0;
        assert_eq!(s.validate(), Ok(()));
        // The reader routes with the epoch-0 table: no collector faults.
        let mut s = ScenarioSpec::query_under_load(TranslatorMode::SingleThreaded);
        s.traffic.append = 0;
        s.traffic.postcarding = 0;
        s.query.as_mut().unwrap().mix.append = 0;
        s.query.as_mut().unwrap().mix.postcarding = 0;
        s.collectors = CollectorPlan {
            fault: Some(CollectorFaultPlan::kill(1, 12_000)),
            timeout_ns: 8_000,
            ..CollectorPlan::fleet(3)
        };
        s.service.nic = s.service.nic.with_ack_coalesce(8);
        let err = s.validate().unwrap_err();
        assert!(err.contains("fault"), "unexpected error: {err}");
        s.collectors.fault = None;
        assert_eq!(s.validate(), Ok(()), "fleet-without-fault query runs are legal");
        // Sharded query runs need collision-free pools.
        let mut s = ScenarioSpec::query_under_load(TranslatorMode::Sharded { shards: 4 });
        s.traffic.slot_disjoint_keys = false;
        let err = s.validate().unwrap_err();
        assert!(err.contains("slot_disjoint_keys"), "unexpected error: {err}");
    }

    #[test]
    fn fault_plan_presets() {
        assert!(FaultPlan::none().fabric.is_none());
        let p = FaultPlan::unreliable_report_path(0.1, 0.05, 0.02);
        assert_eq!(p.fabric.drop_chance, 0.1);
        assert_eq!(p.report_uplinks.duplicate_chance, 0.02);
        assert!(p.rdma_hop.is_none());
    }
}

//! Deterministic workload synthesis for scenario runs.
//!
//! Everything here draws from one seeded RNG stream, so a
//! [`crate::ScenarioSpec`] maps to exactly one workload: per-reporter
//! report schedules plus the ledger (which keys, lists, and flows were
//! used, and how much was sent where) the post-run query phase audits
//! against.

use std::collections::HashSet;

use dta_collector::layout::{KwLayout, PostcardLayout};
use dta_core::{DtaFlags, DtaReport, TelemetryKey};
use dta_hash::family::slot_of;
use dta_hash::{Crc32, CrcParams, HashFamily};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::ScenarioSpec;

/// Report packets framed, by primitive (a Postcarding *op* contributes
/// `path_len` packets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrimitiveCounts {
    /// Key-Write reports.
    pub key_write: u64,
    /// Append reports.
    pub append: u64,
    /// Key-Increment reports.
    pub key_increment: u64,
    /// Postcarding reports (hops, not flows).
    pub postcard: u64,
}

impl PrimitiveCounts {
    /// Total report packets.
    pub fn total(&self) -> u64 {
        self.key_write + self.append + self.key_increment + self.postcard
    }
}

/// A synthesized workload: the schedules plus the audit ledger.
#[derive(Debug, Clone)]
pub struct Workload {
    /// One report schedule per reporter, in fleet order.
    pub streams: Vec<Vec<DtaReport>>,
    /// Distinct Key-Write keys actually written (pool order).
    pub kw_used: Vec<TelemetryKey>,
    /// Key-Increment keys actually incremented (pool order).
    pub inc_used: Vec<TelemetryKey>,
    /// Postcard flow keys emitted (one full path each, emission order).
    pub pc_flows: Vec<TelemetryKey>,
    /// Append entries emitted per list id.
    pub append_per_list: Vec<u64>,
    /// Sum of all Key-Increment deltas emitted.
    pub inc_total: u64,
    /// Report packets framed, by primitive.
    pub counts: PrimitiveCounts,
}

/// A deterministic, optionally collision-filtered pool of keys at a fixed
/// id base. With filtering on, no two keys returned share any of their
/// `family` store slots (over `slots`) nor a postcard-cache row (over
/// `cache_rows`, when nonzero) — the precondition for byte-comparing
/// single-threaded and sharded runs.
struct KeyPool {
    next_id: u64,
    family: HashFamily,
    redundancy: usize,
    slots: u64,
    cache_rows: usize,
    crc: Crc32,
    used_slots: HashSet<u64>,
    used_rows: HashSet<usize>,
    filter: bool,
}

impl KeyPool {
    fn new(base: u64, redundancy: usize, slots: u64, cache_rows: usize, filter: bool) -> Self {
        KeyPool {
            next_id: base,
            family: HashFamily::new(redundancy.max(1)),
            redundancy: redundancy.max(1),
            slots,
            cache_rows,
            crc: Crc32::new(CrcParams::IEEE),
            used_slots: HashSet::new(),
            used_rows: HashSet::new(),
            filter,
        }
    }

    fn next(&mut self) -> TelemetryKey {
        // When the filter is on, candidate keys are rejected until one
        // avoids every used slot/row; near pool exhaustion that rejection
        // rate approaches 1, and past exhaustion it *is* 1 — fail loudly
        // instead of spinning forever. Even a store 99% full needs ~100
        // candidates per key in expectation, far under this bound.
        let limit = 64 * (self.slots + self.cache_rows as u64) + 4096;
        let mut rejected = 0u64;
        loop {
            assert!(
                rejected < limit,
                "slot-disjoint key pool exhausted after {} candidates \
                 ({} slots / {} cache rows already used): shrink the key \
                 pools or grow the store",
                rejected,
                self.used_slots.len(),
                self.used_rows.len(),
            );
            rejected += 1;
            let k = TelemetryKey::from_u64(self.next_id);
            self.next_id += 1;
            if !self.filter {
                return k;
            }
            let key_slots: Vec<u64> = (0..self.redundancy)
                .map(|i| slot_of(self.family.hash(i, k.as_bytes()), self.slots))
                .collect();
            if key_slots.iter().any(|s| self.used_slots.contains(s)) {
                continue;
            }
            // The postcard cache indexes rows by IEEE CRC32 of the key —
            // mirror dta-translator's PostcardCache::row_index so filtered
            // flows never evict each other.
            let row = (self.cache_rows > 0)
                .then(|| self.crc.compute(k.as_bytes()) as usize % self.cache_rows);
            if let Some(row) = row {
                if self.used_rows.contains(&row) {
                    continue;
                }
                self.used_rows.insert(row);
            }
            self.used_slots.extend(key_slots);
            return k;
        }
    }

    /// Pre-draw a pool of `n` keys.
    fn take(&mut self, n: usize) -> Vec<TelemetryKey> {
        (0..n).map(|_| self.next()).collect()
    }
}

/// Non-zero payload of `width` bytes carrying `counter` (little-endian
/// after a fixed sentinel byte, so even entry 0 is distinguishable from
/// never-written store memory).
fn payload(counter: u64, width: usize) -> Vec<u8> {
    let mut v = vec![0u8; width.max(1)];
    v[0] = 0xA5;
    for (i, b) in v.iter_mut().skip(1).enumerate() {
        *b = (counter >> (8 * (i % 8))) as u8;
    }
    v
}

/// Synthesize the workload for `spec`. Pure function of the spec (seeded
/// RNG only).
pub fn generate(spec: &ScenarioSpec) -> Workload {
    let mix = &spec.traffic;
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5CE0_A810_57EA_D511);

    let kw_layout = KwLayout::with_capacity(0, spec.service.kw_bytes, spec.service.kw_value_bytes);
    let pc_layout = PostcardLayout::with_capacity(
        0,
        spec.service.postcard_bytes,
        spec.service.postcard_hops,
        spec.service.postcard_bits,
    );
    let filter = mix.slot_disjoint_keys;
    let mut kw_pool = KeyPool::new(0, mix.kw_redundancy as usize, kw_layout.slots, 0, filter);
    let kw_keys = kw_pool.take(mix.kw_keys.max(1));
    // Flow keys must also be row-disjoint in the translator's postcard
    // cache (see KeyPool); chunk count comes from the collector layout.
    let mut pc_pool = KeyPool::new(
        1 << 40,
        spec.translator.postcard_redundancy,
        pc_layout.chunks,
        if filter { spec.translator.postcard_cache_slots } else { 0 },
        filter,
    );
    // Increments commute, so their pool needs no filtering for ordinary
    // runs — but collector-failover scenarios byte-merge surviving
    // collector regions, which requires CMS counters to be key-private
    // (see `TrafficMix::inc_slot_disjoint`). The CMS geometry is flat:
    // `slot_of(h_i(key), cms_slots)`, mirrored here exactly.
    let mut inc_pool = KeyPool::new(
        0xC0FF_EE00_0000,
        mix.inc_redundancy as usize,
        spec.service.cms_slots.max(1),
        0,
        mix.inc_slot_disjoint,
    );
    let inc_keys = inc_pool.take(mix.inc_keys.max(1));

    let path_len = spec.translator.postcard_hops;
    let weights = [mix.key_write, mix.append, mix.key_increment, mix.postcarding];
    let total_weight: u64 = mix.total_weight();
    // Congestion loop: reporters ask for a NACK when the translator's rate
    // limiter drops their report (§5.2). The flag bit changes nothing else.
    let flags = DtaFlags {
        immediate: false,
        nack_on_drop: spec.congestion.nack_on_drop,
    };

    let mut streams = Vec::with_capacity(spec.reporters as usize);
    let mut kw_hit = vec![false; kw_keys.len()];
    let mut inc_hit = vec![false; inc_keys.len()];
    let mut pc_flows = Vec::new();
    let mut append_per_list = vec![0u64; mix.append_lists.max(1) as usize];
    let mut inc_total = 0u64;
    let mut counts = PrimitiveCounts::default();
    let mut seq = 0u32;
    let mut value_counter = 0u64;
    let mut kw_cursor = 0usize; // round-robin draw for kw_write_once

    for _reporter in 0..spec.reporters {
        let mut stream = Vec::with_capacity(spec.ops_per_reporter as usize);
        for _op in 0..spec.ops_per_reporter {
            let mut roll = rng.gen_range(0..total_weight);
            let mut primitive = 0;
            for (i, w) in weights.iter().enumerate() {
                if roll < *w as u64 {
                    primitive = i;
                    break;
                }
                roll -= *w as u64;
            }
            match primitive {
                0 => {
                    let idx = if mix.kw_write_once {
                        // Each key written at most once (spec validation
                        // guarantees the pool outlasts the op count), so
                        // delivery reordering cannot change final memory.
                        kw_cursor += 1;
                        kw_cursor - 1
                    } else {
                        rng.gen_range(0..kw_keys.len())
                    };
                    kw_hit[idx] = true;
                    value_counter += 1;
                    stream.push(
                        DtaReport::key_write(
                            seq,
                            kw_keys[idx],
                            mix.kw_redundancy,
                            payload(value_counter, spec.service.kw_value_bytes as usize),
                        )
                        .with_flags(flags),
                    );
                    seq += 1;
                    counts.key_write += 1;
                }
                1 => {
                    let list = rng.gen_range(0..mix.append_lists);
                    append_per_list[list as usize] += 1;
                    value_counter += 1;
                    stream.push(
                        DtaReport::append(
                            seq,
                            list,
                            payload(value_counter, spec.service.append_entry_bytes as usize),
                        )
                        .with_flags(flags),
                    );
                    seq += 1;
                    counts.append += 1;
                }
                2 => {
                    let idx = rng.gen_range(0..inc_keys.len());
                    inc_hit[idx] = true;
                    let delta = rng.gen_range(1..=100u64);
                    inc_total += delta;
                    stream.push(
                        DtaReport::key_increment(seq, inc_keys[idx], mix.inc_redundancy, delta)
                            .with_flags(flags),
                    );
                    seq += 1;
                    counts.key_increment += 1;
                }
                _ => {
                    // One op = one full flow, emitted contiguously by this
                    // reporter.
                    let key = pc_pool.next();
                    pc_flows.push(key);
                    for hop in 0..path_len {
                        let value = rng.gen_range(0..spec.translator.postcard_values);
                        stream.push(
                            DtaReport::postcard(seq, key, hop, path_len, value).with_flags(flags),
                        );
                        seq += 1;
                        counts.postcard += 1;
                    }
                }
            }
        }
        streams.push(stream);
    }

    let kw_used = kw_keys
        .iter()
        .zip(&kw_hit)
        .filter_map(|(k, hit)| hit.then_some(*k))
        .collect();
    let inc_used = inc_keys
        .iter()
        .zip(&inc_hit)
        .filter_map(|(k, hit)| hit.then_some(*k))
        .collect();
    Workload { streams, kw_used, inc_used, pc_flows, append_per_list, inc_total, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TrafficMix;

    #[test]
    fn generation_is_deterministic() {
        let spec = ScenarioSpec::default();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.streams, b.streams);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.inc_total, b.inc_total);
        let other = generate(&ScenarioSpec { seed: spec.seed + 1, ..spec });
        assert_ne!(a.streams, other.streams, "seed must matter");
    }

    #[test]
    fn counts_match_streams() {
        let spec = ScenarioSpec::default();
        let w = generate(&spec);
        assert_eq!(w.streams.len(), spec.reporters as usize);
        let framed: u64 = w.streams.iter().map(|s| s.len() as u64).sum();
        assert_eq!(framed, w.counts.total());
        assert_eq!(
            w.append_per_list.iter().sum::<u64>(),
            w.counts.append,
        );
        assert_eq!(
            w.counts.postcard,
            w.pc_flows.len() as u64 * spec.translator.postcard_hops as u64
        );
        assert!(w.counts.key_write > 0 && w.counts.key_increment > 0);
        assert!(!w.kw_used.is_empty() && !w.inc_used.is_empty());
    }

    #[test]
    fn disjoint_pools_share_no_slots_or_rows() {
        let spec = ScenarioSpec {
            traffic: TrafficMix { slot_disjoint_keys: true, ..TrafficMix::default() },
            ..ScenarioSpec::default()
        };
        let w = generate(&spec);
        // Key-Write: no two used keys may share any redundancy slot.
        let layout =
            KwLayout::with_capacity(0, spec.service.kw_bytes, spec.service.kw_value_bytes);
        let family = HashFamily::new(spec.traffic.kw_redundancy as usize);
        let mut seen = HashSet::new();
        for k in &w.kw_used {
            for i in 0..spec.traffic.kw_redundancy as usize {
                assert!(
                    seen.insert(slot_of(family.hash(i, k.as_bytes()), layout.slots)),
                    "kw slot collision in filtered pool"
                );
            }
        }
        // Postcards: chunks and cache rows pairwise distinct.
        let pc_layout = PostcardLayout::with_capacity(
            0,
            spec.service.postcard_bytes,
            spec.service.postcard_hops,
            spec.service.postcard_bits,
        );
        let pc_family = HashFamily::new(spec.translator.postcard_redundancy.max(1));
        let crc = Crc32::new(CrcParams::IEEE);
        let mut chunks = HashSet::new();
        let mut rows = HashSet::new();
        for k in &w.pc_flows {
            assert!(chunks.insert(slot_of(pc_family.hash(0, k.as_bytes()), pc_layout.chunks)));
            assert!(rows
                .insert(crc.compute(k.as_bytes()) as usize % spec.translator.postcard_cache_slots));
        }
    }

    #[test]
    fn inc_slot_disjoint_pool_shares_no_cms_slots() {
        // The failover merge precondition: with `inc_slot_disjoint`, no
        // two used increment keys may share any CMS counter slot (using
        // exactly the collector's flat slot addressing).
        let spec = ScenarioSpec {
            traffic: TrafficMix {
                slot_disjoint_keys: true,
                inc_slot_disjoint: true,
                ..TrafficMix::default()
            },
            ..ScenarioSpec::default()
        };
        let w = generate(&spec);
        let family = HashFamily::new(spec.traffic.inc_redundancy as usize);
        let mut seen = HashSet::new();
        for k in &w.inc_used {
            for i in 0..spec.traffic.inc_redundancy as usize {
                assert!(
                    seen.insert(slot_of(family.hash(i, k.as_bytes()), spec.service.cms_slots)),
                    "cms slot collision in filtered pool"
                );
            }
        }
        // The default (unfiltered) pool draws the same keys it always
        // has: the filter flag must not perturb existing workloads.
        let unfiltered = generate(&ScenarioSpec {
            traffic: TrafficMix { slot_disjoint_keys: true, ..TrafficMix::default() },
            ..ScenarioSpec::default()
        });
        assert_eq!(unfiltered.inc_used, w.inc_used, "filter changed a collision-free draw");
    }

    #[test]
    #[should_panic(expected = "slot-disjoint key pool exhausted")]
    fn infeasible_disjoint_pool_fails_loudly() {
        // 512 KW slots cannot host 512 keys x 2 disjoint redundancy slots:
        // generation must panic with a diagnostic, not hang.
        let mut spec = ScenarioSpec {
            traffic: TrafficMix {
                kw_keys: 512,
                slot_disjoint_keys: true,
                ..TrafficMix::default()
            },
            ..ScenarioSpec::default()
        };
        spec.service.kw_bytes = 4096;
        let _ = generate(&spec);
    }

    #[test]
    fn payloads_are_nonzero() {
        assert_eq!(payload(0, 4)[0], 0xA5);
        assert_ne!(payload(0, 1), vec![0]);
        assert_ne!(payload(7, 4), payload(8, 4));
    }
}

//! The online query service: paced reads against collector memory while
//! the write phase is still running (§6.5 — the collector answers operator
//! queries from host memory as the fabric keeps writing into it).
//!
//! [`QueryService`] owns *reader clones* of the collector stores — the
//! same layouts and hash families over the same `Arc`-shared
//! [`MemoryRegion`](dta_rdma::mr::MemoryRegion)s, but its own Append
//! tails — captured before the services move into their network nodes. At
//! every reporter-tick boundary inside the plan's window the scenario
//! harness quiesces the translator pipeline and calls
//! [`QueryService::run_epoch`], which:
//!
//! 1. snapshots each store's region (pooled
//!    [`SnapshotBuf`](dta_rdma::mr::SnapshotBuf) images taken under the
//!    stripe locks — writers never block, readers never tear),
//! 2. builds a [`SnapshotQueryEngine`] per collector and a
//!    [`FleetQueryEngine`] over them (owner routing with the epoch-0
//!    table; query plans exclude collector faults), and
//! 3. serves the epoch's seeded query stream against the images,
//!    accounting latency, staleness, and hit/miss/fan-out counts into
//!    [`QueryStats`].
//!
//! **Determinism.** Everything in [`QueryStats`] is a pure function of the
//! spec: the stream is drawn from its own seeded RNG (domain-separated
//! from the workload stream), the snapshots are functions of the delivered
//! report sequence at each epoch boundary (the quiesce pins this in
//! sharded mode), and latency is *simulated* — a single-server queue whose
//! service time is a fixed cost model over the engine's deterministic
//! probe accounting, not wall clock. Same spec ⇒ same `QueryStats`, bit
//! for bit, and the writer side never observes the readers at all (reads
//! go to snapshot images), so collector memory stays byte-identical to the
//! query-free twin.

use dta_collector::{
    AppendReader, CollectorService, KeyIncrementStore, KeyWriteStore, PostcardStore, QueryEngine,
    QueryPolicy, QueryRequest, QueryResult, SnapshotQueryEngine, SnapshotView,
};
use dta_core::TelemetryKey;
use dta_rdma::mr::SnapshotBuf;
use dta_translator::{CollectorRoutingTable, FleetQueryEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{QueryMix, QueryPlan, ScenarioSpec};
use crate::traffic::Workload;

/// Fixed simulated service cost per query, before per-probe costs.
const SERVICE_BASE_NS: u64 = 80;
/// Simulated cost per slot/chunk/counter read.
const SERVICE_SLOT_NS: u64 = 30;
/// Simulated cost per fan-out probe (a miss at the owner re-issues the
/// read against another collector).
const SERVICE_FANOUT_NS: u64 = 120;

/// Power-of-two latency histogram: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also takes 0 ns; the last
/// bucket is open-ended).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Log2 buckets.
    pub buckets: [u64; 16],
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, ns.
    pub total_ns: u64,
    /// Smallest sample, ns (0 when empty).
    pub min_ns: u64,
    /// Largest sample, ns.
    pub max_ns: u64,
}

impl LatencyHistogram {
    /// Record one latency sample.
    pub fn record(&mut self, ns: u64) {
        let bucket = if ns == 0 { 0 } else { (ns.ilog2() as usize).min(15) };
        self.buckets[bucket] += 1;
        if self.count == 0 || ns < self.min_ns {
            self.min_ns = ns;
        }
        self.max_ns = self.max_ns.max(ns);
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
    }

    /// Mean latency, ns (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// What the query stream measured. Bit-reproducible for a given spec.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Epochs the service ran (snapshot rounds).
    pub epochs: u64,
    /// Queries issued.
    pub issued: u64,
    /// Queries a store answered (everything but
    /// [`QueryResult::Unavailable`]).
    pub answered: u64,
    /// Queries that returned telemetry (found value, non-blank entry,
    /// non-zero estimate).
    pub hits: u64,
    /// Queries that did not.
    pub misses: u64,
    /// Slot/chunk/counter reads performed.
    pub slot_probes: u64,
    /// Non-owner collectors probed on owner misses (0 for single-collector
    /// runs).
    pub fanout_probes: u64,
    /// Simulated end-to-end latency distribution.
    pub latency: LatencyHistogram,
    /// Sum over queries of how many write epochs elapsed between the
    /// snapshot a query was answered from and the simulated time its
    /// answer was ready (writes past the emission window no longer age an
    /// answer).
    pub staleness_epochs_total: u64,
    /// Worst single-query staleness, in epochs.
    pub staleness_epochs_max: u64,
}

/// Reader clones of one collector's stores: same layouts, hash families,
/// and `Arc`-shared regions as the live service, but independent Append
/// tails (the service's poll progress must not disturb the post-run
/// audit's reader).
pub struct CollectorReaders {
    /// Key-Write reader.
    pub keywrite: Option<KeyWriteStore>,
    /// Postcarding reader.
    pub postcarding: Option<PostcardStore>,
    /// Append reader (own tails, starting at 0).
    pub append: Option<AppendReader>,
    /// Key-Increment reader.
    pub key_increment: Option<KeyIncrementStore>,
}

impl CollectorReaders {
    /// Clone reader stores off a live service. `max_redundancy` is the
    /// service's own hash-family depth
    /// ([`dta_collector::ServiceConfig::max_redundancy`]).
    pub fn from_service(svc: &CollectorService, max_redundancy: usize) -> Self {
        CollectorReaders {
            keywrite: svc
                .keywrite
                .as_ref()
                .map(|s| KeyWriteStore::new(*s.layout(), s.region().clone(), max_redundancy)),
            postcarding: svc.postcarding.as_ref().map(|s| {
                PostcardStore::new(
                    *s.layout(),
                    s.region().clone(),
                    s.codec().clone(),
                    max_redundancy,
                )
            }),
            append: svc
                .append
                .as_ref()
                .map(|r| AppendReader::new(*r.layout(), r.region().clone())),
            key_increment: svc
                .key_increment
                .as_ref()
                .map(|s| KeyIncrementStore::new(*s.layout(), s.region().clone(), max_redundancy)),
        }
    }
}

/// Per-collector snapshot images for one epoch.
struct EpochImages {
    kw: Option<SnapshotBuf>,
    pc: Option<SnapshotBuf>,
    append: Option<SnapshotBuf>,
    cms: Option<SnapshotBuf>,
}

/// The query-service node state (held by the scenario harness, driven at
/// epoch boundaries).
pub struct QueryService {
    plan: QueryPlan,
    /// Plan mix with empty-pool primitives zeroed out (a weight over an
    /// empty pool would have nothing to draw).
    mix: QueryMix,
    tick_ns: u64,
    kw_redundancy: usize,
    inc_redundancy: usize,
    pc_redundancy: usize,
    append_lists: u32,
    kw_pool: Vec<TelemetryKey>,
    inc_pool: Vec<TelemetryKey>,
    pc_pool: Vec<TelemetryKey>,
    readers: Vec<CollectorReaders>,
    /// Epoch-0 routing table (query plans exclude collector faults, so
    /// reader routing never diverges from the writers').
    table: CollectorRoutingTable,
    rng: StdRng,
    /// Single-server queue state of the simulated latency model.
    next_free_ns: u64,
    stats: QueryStats,
}

impl QueryService {
    /// Service over `readers` (fleet order), configured from the spec's
    /// [`QueryPlan`] and drawing keys from the workload's ledgered pools.
    ///
    /// # Panics
    /// Panics if the spec has no query plan.
    pub fn new(spec: &ScenarioSpec, workload: &Workload, readers: Vec<CollectorReaders>) -> Self {
        let plan = spec.query.expect("spec has a query plan");
        let mut mix = plan.mix;
        if workload.kw_used.is_empty() {
            mix.key_write = 0;
        }
        if workload.inc_used.is_empty() {
            mix.key_increment = 0;
        }
        if workload.pc_flows.is_empty() {
            mix.postcarding = 0;
        }
        if spec.traffic.append_lists == 0 {
            mix.append = 0;
        }
        let n = readers.len() as u32;
        QueryService {
            plan,
            mix,
            tick_ns: spec.tick_ns,
            kw_redundancy: spec.traffic.kw_redundancy as usize,
            inc_redundancy: spec.traffic.inc_redundancy as usize,
            pc_redundancy: spec.translator.postcard_redundancy.max(1),
            append_lists: spec.traffic.append_lists,
            kw_pool: workload.kw_used.clone(),
            inc_pool: workload.inc_used.clone(),
            pc_pool: workload.pc_flows.clone(),
            readers,
            table: CollectorRoutingTable::new(n),
            // Domain-separated from the workload stream: the same written
            // memory can be probed by a different query seed.
            rng: StdRng::seed_from_u64(plan.seed ^ 0x9E3A_51C0_0E57_11AD),
            next_free_ns: 0,
            stats: QueryStats::default(),
        }
    }

    /// First epoch index at or after the plan's start.
    pub fn first_epoch(&self) -> u64 {
        self.plan.start_ns.div_ceil(self.tick_ns)
    }

    /// Draw one request from the weighted mix (draw order mirrors the
    /// traffic generator: key_write, append, key_increment, postcarding).
    fn draw(&mut self) -> Option<QueryRequest> {
        let total = self.mix.total_weight();
        if total == 0 {
            return None;
        }
        let mut roll = self.rng.gen_range(0..total);
        if roll < self.mix.key_write as u64 {
            let key = self.kw_pool[self.rng.gen_range(0..self.kw_pool.len())];
            return Some(QueryRequest::KeyWrite {
                key,
                redundancy: self.kw_redundancy,
                policy: QueryPolicy::Plurality,
            });
        }
        roll -= self.mix.key_write as u64;
        if roll < self.mix.append as u64 {
            return Some(QueryRequest::AppendPoll { list: self.rng.gen_range(0..self.append_lists) });
        }
        roll -= self.mix.append as u64;
        if roll < self.mix.key_increment as u64 {
            let key = self.inc_pool[self.rng.gen_range(0..self.inc_pool.len())];
            return Some(QueryRequest::Increment { key, redundancy: self.inc_redundancy });
        }
        let key = self.pc_pool[self.rng.gen_range(0..self.pc_pool.len())];
        Some(QueryRequest::Postcard { key, redundancy: self.pc_redundancy })
    }

    /// Serve one epoch's query stream against fresh snapshot images.
    ///
    /// `epoch` is the tick index (the snapshot is taken at simulated time
    /// `epoch * tick_ns`); `emit_end_ns` bounds the staleness clock — past
    /// the emission window nothing writes, so answers stop aging.
    pub fn run_epoch(&mut self, epoch: u64, emit_end_ns: u64) {
        self.stats.epochs += 1;
        let epoch_start_ns = epoch * self.tick_ns;
        // Inter-arrival spacing of the paced stream within the epoch.
        let spacing = (self.tick_ns / self.plan.rate as u64).max(1);
        // Draw the epoch's requests up front: the RNG stream stays a pure
        // function of (plan seed, epoch order) regardless of how the
        // engines below are borrowed.
        let requests: Vec<Option<QueryRequest>> =
            (0..self.plan.rate).map(|_| self.draw()).collect();

        // 1. Point-in-time images of every store region, fleet order.
        let images: Vec<EpochImages> = self
            .readers
            .iter()
            .map(|r| EpochImages {
                kw: r.keywrite.as_ref().map(|s| s.region().snapshot()),
                pc: r.postcarding.as_ref().map(|s| s.region().snapshot()),
                append: r.append.as_ref().map(|s| s.region().snapshot()),
                cms: r.key_increment.as_ref().map(|s| s.region().snapshot()),
            })
            .collect();

        // 2. One snapshot engine per collector, fleet routing over them.
        let engines: Vec<SnapshotQueryEngine<'_>> = self
            .readers
            .iter_mut()
            .zip(&images)
            .map(|(r, img)| SnapshotQueryEngine {
                keywrite: r.keywrite.as_ref().zip(img.kw.as_ref()).map(|(s, buf)| {
                    (s, SnapshotView { base_va: s.region().base_va, bytes: buf.as_bytes() })
                }),
                postcarding: r.postcarding.as_ref().zip(img.pc.as_ref()).map(|(s, buf)| {
                    (s, SnapshotView { base_va: s.region().base_va, bytes: buf.as_bytes() })
                }),
                append: r.append.as_mut().zip(img.append.as_ref()).map(|(s, buf)| {
                    let base_va = s.region().base_va;
                    (s, SnapshotView { base_va, bytes: buf.as_bytes() })
                }),
                key_increment: r.key_increment.as_ref().zip(img.cms.as_ref()).map(|(s, buf)| {
                    (s, SnapshotView { base_va: s.region().base_va, bytes: buf.as_bytes() })
                }),
            })
            .collect();
        let mut engine = FleetQueryEngine::new(engines, &self.table);

        // 3. The paced stream: arrivals every `spacing` ns, served by a
        // single-server queue with a deterministic cost model.
        for (i, req) in requests.iter().enumerate() {
            let Some(req) = req else { continue };
            let resp = engine.execute(req);
            self.stats.issued += 1;
            if !matches!(resp.result, QueryResult::Unavailable) {
                self.stats.answered += 1;
            }
            if resp.result.is_hit() {
                self.stats.hits += 1;
            } else {
                self.stats.misses += 1;
            }
            self.stats.slot_probes += resp.probes as u64;
            self.stats.fanout_probes += resp.fanout as u64;

            let arrival = epoch_start_ns + i as u64 * spacing;
            let service = SERVICE_BASE_NS
                + SERVICE_SLOT_NS * resp.probes as u64
                + SERVICE_FANOUT_NS * resp.fanout as u64;
            let start = arrival.max(self.next_free_ns);
            let finish = start + service;
            self.next_free_ns = finish;
            self.stats.latency.record(finish - arrival);

            // Staleness: how many write epochs passed between the image
            // this answer reflects and the answer being ready.
            let answered_epoch = finish.min(emit_end_ns) / self.tick_ns;
            let staleness = answered_epoch.saturating_sub(epoch);
            self.stats.staleness_epochs_total += staleness;
            self.stats.staleness_epochs_max = self.stats.staleness_epochs_max.max(staleness);
        }
    }

    /// Consume the service, yielding its stats for the report.
    pub fn into_stats(self) -> QueryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = LatencyHistogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(1023); // bucket 9
        h.record(u64::MAX); // clamped to bucket 15
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[9], 1);
        assert_eq!(h.buckets[15], 1);
        assert_eq!(h.count, 5);
        assert_eq!(h.min_ns, 0);
        assert_eq!(h.max_ns, u64::MAX);
    }

    #[test]
    fn histogram_min_tracks_first_sample() {
        let mut h = LatencyHistogram::default();
        h.record(500);
        h.record(100);
        assert_eq!(h.min_ns, 100);
        assert_eq!(h.max_ns, 500);
        assert_eq!(h.mean_ns(), 300);
    }
}

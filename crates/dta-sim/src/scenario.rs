//! Scenario assembly, execution, and reporting.
//!
//! [`run_scenario`] turns a [`ScenarioSpec`] into a concrete deployment —
//! a k-ary fat tree with a reporter fleet on its hosts, per-link fault
//! injectors, a translator (single-threaded or sharded) intercepting at
//! the collector's ToR, and the collector host terminating RoCE — drives
//! it to completion on the simulated clock, and returns a
//! [`ScenarioReport`] plus a byte snapshot of collector memory.
//!
//! Determinism contract: the simulation engine processes events in
//! (time, insertion) order, every injector is seeded from the scenario
//! seed and the link it guards, and the report only contains quantities
//! that are functions of the spec (thread-scheduling artifacts of the
//! sharded pipeline, like backpressure yield counts, are deliberately
//! excluded). Same spec ⇒ same report, same memory, bit for bit — with
//! one precondition in sharded mode: distinct keys whose store slots
//! collide race their writes across shard threads, so byte-level
//! determinism of memory (and the queries derived from it) additionally
//! requires [`crate::TrafficMix::slot_disjoint_keys`]. Single-threaded
//! runs are unconditional.

use dta_collector::{
    CollectorNode, CollectorNodeStats, CollectorService, PostcardQueryOutcome, QueryEngine,
    QueryOutcome, QueryPolicy, QueryRequest, QueryResult, StoreQueryEngine,
};
use dta_net::{
    FatTree, FaultInjector, LinkConfig, LinkStats, FaultTotals, NetNode, Network, NetworkStats,
    NodeId, SimTime,
};
use dta_rdma::cm::CmRequester;
use dta_rdma::mr::SnapshotBuf;
use dta_reporter::{PacedReporterNode, Reporter, ReporterConfig, ReporterFleetNode, RetxStats};
use dta_translator::node::TranslatorNodeStats;
use dta_translator::{
    FailoverStats, FleetAdmin, FleetConfig, FleetEvent, FleetQueryEngine, FleetShardedNode,
    FleetTranslatorNode, RebalanceConfig, RebalanceStats, ShardedConfig, ShardedTranslatorNode,
    Translator, TranslatorNode, TranslatorStats,
};

use crate::query::{CollectorReaders, QueryService, QueryStats};
use crate::spec::{ScenarioSpec, TranslatorMode};
use crate::traffic::{generate, PrimitiveCounts, Workload};

/// The collector host's IP in every scenario.
pub const COLLECTOR_IP: u32 = 0x0A00_0900;
/// The translator ToR's IP.
pub const TRANSLATOR_IP: u32 = 0x0A00_0001;

/// Collector query results audited against the workload ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryOutcomes {
    /// Key-Write keys that queried back a value.
    pub kw_found: u64,
    /// Key-Write keys whose redundancy slots disagreed.
    pub kw_ambiguous: u64,
    /// Key-Write keys with no surviving slot (e.g., every copy lost).
    pub kw_missing: u64,
    /// Postcard flows whose path queried back.
    pub pc_found: u64,
    /// Postcard flows that did not decode.
    pub pc_missing: u64,
    /// Append entries present in collector memory (non-zero payload among
    /// the first `sent` entries of each list).
    pub append_entries: u64,
    /// Sum of Key-Increment estimates over the used keys (a CMS-style
    /// overestimate of the delivered delta total).
    pub inc_estimate_total: u64,
    /// Key-Write point lookups that had to probe a collector *other* than
    /// the key's routed owner (fleet audits fan out on an owner miss; see
    /// [`run_scenario`]'s audit). A completed rebalance repatriates every
    /// key to its primary, so a post-release audit pins this to zero.
    pub fanout_lookups: u64,
}

/// Everything a scenario run measured. Bit-reproducible for a given spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioReport {
    /// Report packets framed by the fleet, per primitive.
    pub sent: PrimitiveCounts,
    /// Reports still unsent when the run's deadline passed (0 for a
    /// correctly sized spec).
    pub reports_unsent: u64,
    /// Simulation engine counters (delivered / forwarded / dropped /
    /// intercepted).
    pub net: NetworkStats,
    /// Aggregated fault-injector counters across every faulted link.
    pub faults: FaultTotals,
    /// Aggregated link counters across the whole fabric.
    pub links: LinkStats,
    /// Translator dataplane counters (merged across shards in sharded
    /// mode).
    pub translator: TranslatorStats,
    /// Translator node counters (reports decoded, malformed, forwarded).
    pub translator_node: TranslatorNodeStats,
    /// Reporter-side congestion-loop counters, aggregated over the fleet
    /// (NACKs received/answered, stray deliveries, retransmissions).
    pub reporter: RetxStats,
    /// Reports each shard translated (empty in single-threaded mode).
    pub per_shard_reports_in: Vec<u64>,
    /// RDMA verbs executed against collector memory (collector NIC in
    /// single-threaded mode, shard endpoints in sharded mode).
    pub executed: u64,
    /// Collector node counters (RoCE over the simulated wire only; summed
    /// across the fleet when `collectors.count > 1`).
    pub collector: CollectorNodeStats,
    /// Collector-failover counters (all zero for single-collector runs).
    pub failover: FailoverStats,
    /// Rebalance migration counters (`None` unless the spec scheduled a
    /// [`crate::RebalancePlan`]).
    pub rebalance: Option<RebalanceStats>,
    /// Post-run query audit (routed by the final collector table in fleet
    /// runs).
    pub queries: QueryOutcomes,
    /// Online query-stream measurements (`None` unless the spec carries a
    /// [`crate::QueryPlan`]).
    pub query: Option<QueryStats>,
}

/// A finished run: the report plus the collector's raw region bytes
/// (rkey-sorted), for memory-equivalence comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Counters and query audit.
    pub report: ScenarioReport,
    /// `(rkey, bytes)` of every registered collector region. The byte
    /// images live in pooled [`SnapshotBuf`]s (deref to `&[u8]`). For a
    /// fleet run this is the *merged* view — the byte-wise OR of every
    /// collector the final routing table considers alive, which (under the
    /// fleet preconditions: write-once KW, slot-disjoint pools) equals a
    /// union of the fleet's writes and is comparable byte-for-byte against
    /// another run's merged view.
    pub memory: Vec<(u32, SnapshotBuf)>,
    /// Per-collector unmerged snapshots, fleet order (empty unless
    /// `collectors.count > 1`).
    pub fleet_memory: Vec<Vec<(u32, SnapshotBuf)>>,
}

/// FNV-1a fingerprint of a [`ScenarioOutcome::memory`] snapshot, mixing
/// each region's rkey ahead of its bytes. The engine-golden tests and the
/// `golden_capture` bench example share this one definition, so a
/// re-captured golden always matches what the test recomputes.
pub fn memory_fingerprint(memory: &[(u32, SnapshotBuf)]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let fnv1a = |bytes: &[u8]| {
        let mut h = OFFSET;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    };
    let mut hash = OFFSET;
    for (rkey, bytes) in memory {
        hash ^= *rkey as u64;
        hash = hash.wrapping_mul(PRIME);
        hash ^= fnv1a(bytes);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// SplitMix64 — derives per-link injector seeds from the scenario seed so
/// adjacent links never share an RNG stream.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn link_seed(seed: u64, from: NodeId, to: NodeId) -> u64 {
    splitmix64(seed ^ ((from.0 as u64) << 32 | to.0 as u64))
}

thread_local! {
    /// Cumulative per-phase wall time of every [`run_scenario`] call on
    /// this thread, in nanoseconds: generate, fabric build, collector +
    /// translator build, fleet placement, engine loop, extraction, audit,
    /// snapshot. A profiling hook for the bench examples — the eight
    /// `Instant::now` calls per run are noise next to the run itself.
    pub static PHASE_NS: std::cell::RefCell<[u128; 8]> = const { std::cell::RefCell::new([0; 8]) };
}

/// Charge the time since `*t` to phase `i` and reset the mark.
fn mark(i: usize, t: &mut std::time::Instant) {
    let now = std::time::Instant::now();
    PHASE_NS.with(|p| p.borrow_mut()[i] += (now - *t).as_nanos());
    *t = now;
}

/// Build, run, audit. See the module docs for the determinism contract.
///
/// # Panics
/// Panics if the spec fails [`ScenarioSpec::validate`].
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioOutcome {
    spec.validate().unwrap_or_else(|e| panic!("invalid scenario spec: {e}"));
    let mut __t = std::time::Instant::now();
    let workload = generate(spec);
    mark(0, &mut __t);

    // --- Fabric -----------------------------------------------------------
    let ft = FatTree::new(spec.fat_tree_k);
    let tor = ft.edge(0, 0);
    let num_switches = ft.num_switches();
    let half = spec.fat_tree_k / 2;
    // Collector sites: the first `count` hosts in deterministic
    // (pod, edge, host) order — site 0 is always `host(0, 0, 0)`, the
    // collector every existing single-collector scenario uses. Reports
    // stay addressed to site 0 regardless of fleet size (the ToR
    // translator intercepts them before the last hop), so the reporter
    // path is identical in fleet and single runs.
    let fleet_size = spec.collectors.count.max(1) as usize;
    let fleet = fleet_size > 1;
    let mut collector_sites = Vec::with_capacity(fleet_size); // (host, its edge)
    'sites: for pod in 0..spec.fat_tree_k {
        for e in 0..half {
            for h in 0..half {
                collector_sites.push((ft.host(pod, e, h), ft.edge(pod, e)));
                if collector_sites.len() == fleet_size {
                    break 'sites;
                }
            }
        }
    }
    let collector_host = collector_sites[0].0;
    let mut net = Network::new(ft.topology.shortest_path_routing());
    for (a, b) in ft.topology.edges() {
        net.add_duplex_link(a, b, LinkConfig::dc_100g());
    }
    // The intra-rack RoCE hop is PFC-lossless (§4/§7) by default:
    // congestion must never silently drop RDMA traffic the way a lossy
    // report link may. Congestion scenarios may substitute a tighter (or
    // deliberately lossy) class via the plan. Every collector's last hop
    // gets the RoCE link class.
    for &(host, edge) in &collector_sites {
        net.add_duplex_link(edge, host, spec.congestion.rdma_link);
    }

    // --- Reporter fleet ---------------------------------------------------
    // Deterministic (pod, edge, host) placement, skipping the collectors:
    // reporter `r` lands on host `r % hosts_used` as lane `r / hosts_used`
    // (so a fleet no larger than the host count gets one lane per host,
    // exactly the pre-lane layout).
    let mut placements = Vec::new(); // (host, its edge switch)
    'outer: for pod in 0..spec.fat_tree_k {
        for e in 0..half {
            for h in 0..half {
                let host = ft.host(pod, e, h);
                if collector_sites.iter().any(|&(c, _)| c == host) {
                    continue;
                }
                placements.push((host, ft.edge(pod, e)));
                if placements.len() == spec.reporters as usize {
                    break 'outer;
                }
            }
        }
    }
    let hosts_used = placements.len();

    // --- Faults -----------------------------------------------------------
    if !spec.faults.report_uplinks.is_none() {
        for &(host, edge) in &placements {
            net.add_faults(
                host,
                edge,
                FaultInjector::new(spec.faults.report_uplinks, link_seed(spec.seed, host, edge)),
            );
        }
    }
    if !spec.faults.fabric.is_none() {
        for (a, b) in ft.topology.edges() {
            if a.0 < num_switches && b.0 < num_switches {
                for (from, to) in [(a, b), (b, a)] {
                    net.add_faults(
                        from,
                        to,
                        FaultInjector::new(spec.faults.fabric, link_seed(spec.seed, from, to)),
                    );
                }
            }
        }
    }
    if !spec.faults.rdma_hop.is_none() {
        net.add_faults(
            tor,
            collector_host,
            FaultInjector::new(spec.faults.rdma_hop, link_seed(spec.seed, tor, collector_host)),
        );
    }

    mark(1, &mut __t);
    // --- Collector + translator ------------------------------------------
    // The congestion plan's rate limiter overlays the translator sizing
    // (both modes; the sharded pipeline divides the budget across shards).
    let translator_config = {
        let mut c = spec.translator.clone();
        if let Some(limit) = spec.congestion.rate_limit {
            c.rate_limit = Some(limit);
        }
        c
    };
    let mut fleet_admin: Option<FleetAdmin> = None;
    // Reader clones for the online query service, captured before the
    // services move into their network nodes (both branches below).
    let mut query_readers: Vec<CollectorReaders> = Vec::new();
    let sharded_tor = if fleet {
        let mut services: Vec<CollectorService> =
            (0..fleet_size).map(|_| CollectorService::new(spec.service.clone())).collect();
        let mut peers: Vec<(NodeId, u32, &mut CollectorService)> = services
            .iter_mut()
            .enumerate()
            .map(|(c, svc)| (collector_sites[c].0, COLLECTOR_IP + c as u32, svc))
            .collect();
        // The migration path rolls its own fault dice (there is no
        // simulated link between the fence and the fallback's memory), so
        // it gets a domain-separated stream off the scenario seed.
        let rebalance_cfg = spec.rebalance.as_ref().map(|rb| RebalanceConfig {
            fence_capacity: rb.fence_capacity,
            ledger_capacity: rb.ledger_capacity,
            drain_batch: rb.drain_batch,
            retry_ns: rb.retry_ns,
            faults: rb.faults,
            seed: splitmix64(spec.seed ^ 0x5EBA_1A4C),
        });
        let sharded = match spec.mode {
            TranslatorMode::Sharded { shards } => {
                let (node, admin) = FleetShardedNode::connect(
                    &ShardedConfig {
                        shards,
                        translator: translator_config,
                        ..ShardedConfig::default()
                    },
                    spec.collectors.ledger_capacity,
                    rebalance_cfg,
                    &mut peers,
                );
                fleet_admin = Some(admin);
                net.add_interceptor(tor, Box::new(node));
                true
            }
            TranslatorMode::SingleThreaded => {
                let (node, admin) = FleetTranslatorNode::connect(
                    &FleetConfig {
                        translator: translator_config,
                        timeout_ns: spec.collectors.timeout_ns,
                        min_unacked: spec.collectors.min_unacked,
                        ledger_capacity: spec.collectors.ledger_capacity,
                        rebalance: rebalance_cfg,
                    },
                    &mut peers,
                    tor,
                    TRANSLATOR_IP,
                );
                fleet_admin = Some(admin);
                net.add_interceptor(tor, Box::new(node));
                false
            }
        };
        drop(peers);
        // Fleet ticks drive admin-event consumption, completion-timeout
        // detection, and periodic endpoint flushes.
        net.add_tick(tor, spec.tick_ns);
        if spec.query.is_some() {
            query_readers = services
                .iter()
                .map(|svc| CollectorReaders::from_service(svc, spec.service.max_redundancy))
                .collect();
        }
        for (c, svc) in services.into_iter().enumerate() {
            let (host, _) = collector_sites[c];
            net.add_node(host, Box::new(CollectorNode::new(svc, host, COLLECTOR_IP + c as u32)));
        }
        sharded
    } else {
        let mut svc = CollectorService::new(spec.service.clone());
        let sharded = match spec.mode {
            TranslatorMode::Sharded { shards } => {
                let mut node = ShardedTranslatorNode::connect(
                    ShardedConfig {
                        shards,
                        translator: translator_config,
                        ..ShardedConfig::default()
                    },
                    &mut svc,
                );
                if spec.congestion.nack_on_drop {
                    // Worker-side rate-limit drops are NACKed from the engine
                    // thread on this node's ticks (period = the reporter pacing
                    // period; each tick barriers on the shard queues, so the
                    // drained set is deterministic).
                    node.enable_nacks(tor, TRANSLATOR_IP);
                    net.add_tick(tor, spec.tick_ns);
                }
                net.add_interceptor(tor, Box::new(node));
                true
            }
            TranslatorMode::SingleThreaded => {
                let mut translator = Translator::new(translator_config);
                for (i, service) in [
                    dta_collector::SERVICE_KW,
                    dta_collector::SERVICE_POSTCARD,
                    dta_collector::SERVICE_APPEND,
                    dta_collector::SERVICE_CMS,
                ]
                .into_iter()
                .enumerate()
                {
                    let req = CmRequester::new(0x700 + i as u32, 0);
                    let reply = svc.handle_cm(&req.request(service));
                    let Ok((qp, params)) = req.complete(&reply) else {
                        continue; // primitive disabled at the collector
                    };
                    match service {
                        dta_collector::SERVICE_KW => translator.connect_key_write(qp, params),
                        dta_collector::SERVICE_POSTCARD => {
                            translator.connect_postcarding(qp, params)
                        }
                        dta_collector::SERVICE_APPEND => translator.connect_append(qp, params),
                        dta_collector::SERVICE_CMS => translator.connect_key_increment(qp, params),
                        _ => unreachable!(),
                    }
                }
                net.add_interceptor(
                    tor,
                    Box::new(TranslatorNode::new(
                        translator,
                        tor,
                        TRANSLATOR_IP,
                        collector_host,
                        COLLECTOR_IP,
                    )),
                );
                false
            }
        };
        if spec.query.is_some() {
            query_readers = vec![CollectorReaders::from_service(&svc, spec.service.max_redundancy)];
        }
        net.add_node(
            collector_host,
            Box::new(CollectorNode::new(svc, collector_host, COLLECTOR_IP)),
        );
        sharded
    };

    mark(2, &mut __t);
    // --- Fleet nodes and pacing ------------------------------------------
    let mut max_ticks = 0u64;
    let mut fleet_nodes: Vec<ReporterFleetNode> = (0..hosts_used)
        .map(|_| {
            let mut node = ReporterFleetNode::new(spec.reports_per_tick);
            if let Some(policy) = spec.congestion.retransmit {
                node.set_retransmit(policy);
            }
            node
        })
        .collect();
    for (r, stream) in workload.streams.iter().enumerate() {
        let (host, _) = placements[r % hosts_used];
        let lane = (r / hosts_used) as u32;
        max_ticks =
            max_ticks.max(PacedReporterNode::ticks_to_drain(stream.len(), spec.reports_per_tick));
        let reporter = Reporter::new(ReporterConfig {
            my_id: host,
            // Lane 0 keeps the historical per-host IP; co-located lanes
            // get a distinct second octet so every reporter has its own
            // source address.
            my_ip: 0x0A02_0000 + (lane << 16) + host.0,
            collector_id: collector_host,
            collector_ip: COLLECTOR_IP,
            src_port: 5000,
        });
        fleet_nodes[r % hosts_used].add_lane(reporter, stream.clone());
    }
    for (node, &(host, _)) in fleet_nodes.into_iter().zip(&placements) {
        net.add_node(host, Box::new(node));
        net.add_tick(host, spec.tick_ns);
    }

    // --- Run on the simulated clock ---------------------------------------
    let emit_end = spec.tick_ns * (max_ticks + 1);
    let flush_at = emit_end + spec.drain_ns;
    if !sharded_tor && !fleet {
        // One translator flush inside the run (postcard cache rows, partial
        // append batches): the first tick of this series fires at
        // `flush_at`, the second lands past the deadline. The sharded
        // pipeline instead flushes at shutdown, below; the fleet node
        // flushes on its periodic ticks.
        net.add_tick(tor, flush_at);
    }
    let deadline = flush_at + spec.drain_ns;
    mark(3, &mut __t);
    // Fleet fault schedule: run up to the kill time, take the victim off
    // the fabric (or, for a spurious failover, just slander it to the
    // translator), optionally re-seat it at the rejoin time, then run out
    // the clock. Packets addressed to a removed node are dropped by the
    // engine — exactly a fail-stop host.
    let mut parked_victim: Option<(NodeId, Box<dyn NetNode>)> = None;
    if let (true, Some(f)) = (fleet, spec.collectors.fault) {
        let admin = fleet_admin.as_ref().expect("fleet admin");
        let victim_host = collector_sites[f.victim as usize].0;
        net.run_until(SimTime::from_nanos(f.kill_at_ns.min(deadline)));
        if f.spurious {
            admin.signal(FleetEvent::ForceFailover { collector: f.victim });
        } else {
            let boxed = net.remove_node(victim_host).expect("victim collector node");
            if sharded_tor {
                // The sharded pipelines execute RDMA in-process, so there is
                // no wire-level completion loop to time out on: the CM
                // teardown stands in for fail-stop detection.
                admin.signal(FleetEvent::Teardown { collector: f.victim });
            }
            parked_victim = Some((victim_host, boxed));
        }
        if let Some(rejoin_at) = f.rejoin_at_ns {
            net.run_until(SimTime::from_nanos(rejoin_at.min(deadline)));
            if let Some((host, boxed)) = parked_victim.take() {
                net.add_node(host, boxed);
            }
            admin.signal(FleetEvent::Rejoin { collector: f.victim });
        }
        if let Some(rb) = &spec.rebalance {
            // Fence up: the rejoined victim starts reclaiming its key
            // range while emission is still live.
            net.run_until(SimTime::from_nanos(rb.start_at_ns.min(deadline)));
            admin.signal(FleetEvent::Rebalance { collector: f.victim });
        }
    }
    // Online query service: pause at every epoch boundary inside the
    // plan's window, quiesce the sharded pipeline (so the snapshot is a
    // pure function of the delivered stream, not worker scheduling), and
    // serve the epoch's query stream against per-epoch snapshot images.
    // Query plans exclude collector faults, so this never interleaves
    // with the fault schedule above.
    let mut query_service =
        spec.query.map(|_| QueryService::new(spec, &workload, std::mem::take(&mut query_readers)));
    if let (Some(qs), Some(plan)) = (query_service.as_mut(), spec.query) {
        let stop_ns = plan.stop_ns.min(deadline);
        let mut epoch = qs.first_epoch();
        while epoch * spec.tick_ns < stop_ns {
            net.run_until(SimTime::from_nanos(epoch * spec.tick_ns));
            if sharded_tor {
                let node = net.node_mut(tor).expect("translator node");
                let node: &mut dyn std::any::Any = node;
                if let Some(n) = node.downcast_mut::<FleetShardedNode>() {
                    n.quiesce();
                } else if let Some(n) = node.downcast_mut::<ShardedTranslatorNode>() {
                    n.quiesce();
                }
            }
            qs.run_epoch(epoch, emit_end);
            epoch += 1;
        }
    }
    net.run_until(SimTime::from_nanos(deadline));
    mark(4, &mut __t);

    // --- Extract ----------------------------------------------------------
    let net_stats = net.stats;
    let fault_totals = net.fault_totals();
    let link_totals = net.link_totals();

    let mut reports_unsent = 0u64;
    let mut reporter_totals = RetxStats::default();
    for &(host, _) in &placements {
        let node: Box<dyn std::any::Any> = net.remove_node(host).expect("reporter node");
        let node = node.downcast::<ReporterFleetNode>().expect("reporter type");
        reports_unsent += node.pending() as u64;
        reporter_totals.merge(&node.retx_stats);
    }

    let tor_node: Box<dyn std::any::Any> = net.remove_node(tor).expect("translator node");
    let (translator_stats, translator_node_stats, per_shard, sharded_executed, failover, rebalance, table) =
        if fleet {
            if sharded_tor {
                let mut node =
                    tor_node.downcast::<FleetShardedNode>().expect("fleet sharded node");
                let node_stats = node.stats;
                let rep = node.finish().expect("pipelines not yet finished");
                let mut translator = TranslatorStats::default();
                let mut per_shard = Vec::new();
                let mut executed = 0u64;
                for run in &rep.runs {
                    translator.merge(&run.translator);
                    per_shard.extend(run.shards.iter().map(|s| s.translator.reports_in));
                    executed += run.executed;
                }
                (translator, node_stats, per_shard, Some(executed), rep.failover, rep.rebalance, Some(rep.table))
            } else {
                let mut node = tor_node.downcast::<FleetTranslatorNode>().expect("fleet node");
                let node_stats = node.stats;
                let rep = node.finish();
                (rep.translator, node_stats, Vec::new(), None, rep.failover, rep.rebalance, Some(rep.table))
            }
        } else if sharded_tor {
            let mut node = tor_node.downcast::<ShardedTranslatorNode>().expect("sharded node");
            let node_stats = node.stats;
            let run = node.finish().expect("pipeline not yet finished");
            let per_shard = run.shards.iter().map(|s| s.translator.reports_in).collect();
            (run.translator, node_stats, per_shard, Some(run.executed), FailoverStats::default(), None, None)
        } else {
            let node = tor_node.downcast::<TranslatorNode>().expect("translator type");
            (node.translator.stats, node.stats, Vec::new(), None, FailoverStats::default(), None, None)
        };

    // The victim of a genuine kill lives in `parked_victim`, not the
    // engine; everyone else comes off the fabric here. Fleet order.
    let mut collector_nodes: Vec<Box<CollectorNode>> = Vec::with_capacity(fleet_size);
    let mut collector_stats = CollectorNodeStats::default();
    for &(host, _) in &collector_sites {
        let boxed: Box<dyn NetNode> = match parked_victim.take() {
            Some((victim_host, boxed)) if victim_host == host => boxed,
            other => {
                parked_victim = other;
                net.remove_node(host).expect("collector node")
            }
        };
        let boxed: Box<dyn std::any::Any> = boxed;
        let node = boxed.downcast::<CollectorNode>().expect("collector type");
        collector_stats.executed += node.stats.executed;
        collector_stats.naks += node.stats.naks;
        collector_stats.dropped += node.stats.dropped;
        collector_nodes.push(node);
    }
    let executed = sharded_executed.unwrap_or(collector_stats.executed);

    mark(5, &mut __t);
    // Both deployment shapes audit through the one QueryEngine API: the
    // single collector via its live store engine, the fleet via the same
    // engines wrapped in owner-first fan-out routing over the *final*
    // routing table — the same checksum digest and table reduction the
    // translators used on the wire, so a key rerouted by a failover is
    // queried at its surviving owner.
    let queries = if let Some(table) = &table {
        let engines: Vec<StoreQueryEngine<'_>> =
            collector_nodes.iter_mut().map(|n| n.service.engine()).collect();
        audit_with(&mut FleetQueryEngine::new(engines, table), spec, &workload)
    } else {
        audit_with(&mut collector_nodes[0].service.engine(), spec, &workload)
    };
    mark(6, &mut __t);
    let (memory, fleet_memory) = if let Some(table) = &table {
        // Unmerged per-collector snapshots, plus the byte-wise OR over the
        // collectors the final table considers alive. Under the fleet
        // preconditions (write-once KW, slot-disjoint key pools) each byte
        // is written by at most one collector, so the OR is a union and is
        // comparable across runs with different fault schedules.
        let fleet_memory: Vec<Vec<(u32, SnapshotBuf)>> =
            collector_nodes.iter().map(|n| snapshot_regions(&n.service)).collect();
        let mut alive = (0..fleet_size as u32).filter(|&c| table.is_alive(c));
        let first = alive.next().expect("at least one live collector") as usize;
        let mut merged = snapshot_regions(&collector_nodes[first].service);
        for c in alive {
            for ((rkey, buf), (other_rkey, other)) in
                merged.iter_mut().zip(&fleet_memory[c as usize])
            {
                debug_assert_eq!(*rkey, *other_rkey, "fleet collectors register identical regions");
                buf.or_with(other);
            }
        }
        (merged, fleet_memory)
    } else {
        (snapshot_regions(&collector_nodes[0].service), Vec::new())
    };
    mark(7, &mut __t);

    ScenarioOutcome {
        report: ScenarioReport {
            sent: workload.counts,
            reports_unsent,
            net: net_stats,
            faults: fault_totals,
            links: link_totals,
            translator: translator_stats,
            translator_node: translator_node_stats,
            reporter: reporter_totals,
            per_shard_reports_in: per_shard,
            executed,
            collector: collector_stats,
            failover,
            rebalance,
            queries,
            query: query_service.map(QueryService::into_stats),
        },
        memory,
        fleet_memory,
    }
}

/// Rkey-sorted byte snapshots of every registered region.
fn snapshot_regions(svc: &CollectorService) -> Vec<(u32, SnapshotBuf)> {
    let mut memory: Vec<(u32, SnapshotBuf)> =
        svc.nic.memory.regions().map(|r| (r.rkey, r.snapshot())).collect();
    memory.sort_by_key(|(rkey, _)| *rkey);
    memory
}

/// Query the collector deployment against the workload ledger through the
/// unified [`QueryEngine`] API. The engine decides *where* a query reads —
/// one live store, or owner-first fan-out across a fleet
/// ([`FleetQueryEngine`]) — this function only decides *what* is asked and
/// how outcomes tally. A primitive with no store anywhere
/// ([`QueryResult::Unavailable`]) tallies nothing, matching the historical
/// per-store audits.
fn audit_with<E: QueryEngine>(
    engine: &mut E,
    spec: &ScenarioSpec,
    workload: &Workload,
) -> QueryOutcomes {
    let mut q = QueryOutcomes::default();
    for key in &workload.kw_used {
        let resp = engine.execute(&QueryRequest::KeyWrite {
            key: *key,
            redundancy: spec.traffic.kw_redundancy as usize,
            policy: QueryPolicy::Plurality,
        });
        // Every probe past the routed owner is scattered state a rebalance
        // would have repatriated — a released rebalance audit pins this
        // count to zero. Only Key-Write point lookups count (the audit has
        // always treated Postcarding fan-out as free).
        q.fanout_lookups += resp.fanout as u64;
        match resp.result {
            QueryResult::KeyWrite(QueryOutcome::Found(_)) => q.kw_found += 1,
            QueryResult::KeyWrite(QueryOutcome::Ambiguous) => q.kw_ambiguous += 1,
            QueryResult::KeyWrite(QueryOutcome::NotFound) => q.kw_missing += 1,
            QueryResult::Unavailable => {}
            other => unreachable!("Key-Write request answered as {other:?}"),
        }
    }
    for key in &workload.pc_flows {
        let resp = engine.execute(&QueryRequest::Postcard {
            key: *key,
            redundancy: spec.translator.postcard_redundancy.max(1),
        });
        match resp.result {
            QueryResult::Postcard(PostcardQueryOutcome::Found(_)) => q.pc_found += 1,
            QueryResult::Postcard(_) => q.pc_missing += 1,
            QueryResult::Unavailable => {}
            other => unreachable!("Postcard request answered as {other:?}"),
        }
    }
    for (list, &sent) in workload.append_per_list.iter().enumerate() {
        if list as u32 >= spec.service.append_lists {
            break;
        }
        let drain = sent.min(spec.service.append_entries);
        for _ in 0..drain {
            let resp = engine.execute(&QueryRequest::AppendPoll { list: list as u32 });
            if resp.result.is_hit() {
                q.append_entries += 1;
            }
        }
    }
    for key in &workload.inc_used {
        let resp = engine.execute(&QueryRequest::Increment {
            key: *key,
            redundancy: spec.traffic.inc_redundancy as usize,
        });
        if let QueryResult::Increment(estimate) = resp.result {
            q.inc_estimate_total += estimate;
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_separates_adjacent_links() {
        let a = link_seed(1, NodeId(0), NodeId(1));
        let b = link_seed(1, NodeId(1), NodeId(0));
        let c = link_seed(2, NodeId(0), NodeId(1));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}

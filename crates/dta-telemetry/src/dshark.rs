//! dShark: distributed packet-trace analysis (Table 2).
//!
//! dShark's parsers summarize packets and ship the summaries to grouper
//! servers; DTA carries the parser→grouper transfer with Append: "parsers
//! append packet summaries to lists hosted by Grouper-servers". Summaries
//! for one flow must reach the same grouper, so the list is chosen by flow
//! hash.

use dta_core::DtaReport;

use crate::traces::TracePacket;

/// A dShark parser shipping packet summaries to `groupers` grouper lists.
pub struct DsharkParser {
    /// Number of grouper lists.
    pub groupers: u32,
    /// Base list id (groupers occupy `base..base + groupers`).
    pub base_list: u32,
    seq: u32,
    /// Summaries emitted.
    pub emitted: u64,
}

impl DsharkParser {
    /// Parser over `groupers` groupers.
    pub fn new(groupers: u32, base_list: u32) -> Self {
        assert!(groupers >= 1);
        DsharkParser { groupers, base_list, seq: 0, emitted: 0 }
    }

    /// Grouper index for a flow (all summaries of a flow co-locate).
    pub fn grouper_for(&self, pkt: &TracePacket) -> u32 {
        let enc = pkt.flow.encode();
        let mut acc = 5381u64;
        for &b in &enc {
            acc = acc.wrapping_mul(33) ^ b as u64;
        }
        (acc % self.groupers as u64) as u32
    }

    /// Summarize one packet: 16 B summary (13 B tuple + 2 B size + 1 B
    /// flags) appended to the flow's grouper list.
    pub fn on_packet(&mut self, pkt: &TracePacket) -> DtaReport {
        self.seq = self.seq.wrapping_add(1);
        self.emitted += 1;
        let mut payload = pkt.flow.encode().to_vec();
        payload.extend_from_slice(&pkt.size.to_be_bytes());
        payload.push(pkt.last_of_flow as u8);
        DtaReport::append(self.seq, self.base_list + self.grouper_for(pkt), payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{TraceConfig, TraceGenerator};
    use dta_core::{FlowTuple, PrimitiveHeader};

    #[test]
    fn same_flow_same_grouper() {
        let mut p = DsharkParser::new(8, 100);
        let f = FlowTuple::tcp(1, 2, 3, 4);
        let mk = |sz| TracePacket { ts_ns: 0, flow: f, size: sz, last_of_flow: false };
        let a = p.on_packet(&mk(100));
        let b = p.on_packet(&mk(1500));
        let (la, lb) = match (a.primitive, b.primitive) {
            (PrimitiveHeader::Append(x), PrimitiveHeader::Append(y)) => (x.list_id, y.list_id),
            _ => panic!("wrong primitive"),
        };
        assert_eq!(la, lb);
    }

    #[test]
    fn summaries_spread_over_groupers() {
        let mut p = DsharkParser::new(4, 0);
        let mut gen = TraceGenerator::new(TraceConfig::default());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let r = p.on_packet(&gen.next_packet());
            if let PrimitiveHeader::Append(h) = r.primitive {
                seen.insert(h.list_id);
            }
        }
        assert_eq!(seen.len(), 4, "all groupers should receive summaries");
    }

    #[test]
    fn summary_is_16_bytes() {
        let mut p = DsharkParser::new(1, 0);
        let f = FlowTuple::tcp(1, 2, 3, 4);
        let r = p.on_packet(&TracePacket { ts_ns: 0, flow: f, size: 64, last_of_flow: true });
        assert_eq!(r.payload.len(), 16);
    }
}

//! In-band Network Telemetry (INT).
//!
//! Three INT working modes appear in the paper:
//! * **XD/MX postcards** — every sampled packet makes each hop export a 4 B
//!   postcard; DTA collects them with the Postcarding primitive keyed on
//!   `(flow, hop)`.
//! * **MD path tracing** — metadata accumulates in the packet; the sink
//!   exports the full path (5×4 B switch IDs) with a Key-Write keyed on the
//!   flow 5-tuple.
//! * **Congestion events** — sinks append 4 B queue-depth reports to a
//!   global event list.

use dta_core::{DtaReport, FlowTuple, TelemetryKey};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traces::TracePacket;

/// Derive a deterministic `hops`-long switch-ID path for a flow, within a
/// universe of `values` switch IDs. Stands in for the fabric's real routing:
/// what matters to DTA is that a flow always reports the same path.
pub fn synthetic_path(flow: &FlowTuple, hops: u8, values: u32) -> Vec<u32> {
    assert!(values >= 1);
    let enc = flow.encode();
    (0..hops)
        .map(|h| {
            let mut acc = 0xCBF2_9CE4_8422_2325u64; // FNV offset basis
            for &b in enc.iter() {
                acc = (acc ^ b as u64).wrapping_mul(0x1000_0000_01B3);
            }
            ((acc.rotate_left(h as u32 * 8 + 1) >> 7) % values as u64) as u32
        })
        .collect()
}

/// INT-XD/MX: per-hop postcards for sampled packets.
pub struct IntPostcards {
    /// Sampling probability (Table 1 uses 0.5%).
    pub sampling: f64,
    /// Hop bound `B`.
    pub hops: u8,
    /// Switch-ID universe |V|.
    pub values: u32,
    rng: StdRng,
    seq: u32,
    /// Postcards emitted.
    pub emitted: u64,
}

impl IntPostcards {
    /// Postcard generator with the given sampling rate.
    pub fn new(sampling: f64, hops: u8, values: u32, seed: u64) -> Self {
        IntPostcards {
            sampling,
            hops,
            values,
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
            emitted: 0,
        }
    }

    /// Reports for one trace packet: either none (not sampled) or one
    /// postcard per hop.
    pub fn on_packet(&mut self, pkt: &TracePacket) -> Vec<DtaReport> {
        if self.sampling < 1.0 && !self.rng.gen_bool(self.sampling) {
            return Vec::new();
        }
        let key = TelemetryKey::flow(&pkt.flow);
        let path = synthetic_path(&pkt.flow, self.hops, self.values);
        path.iter()
            .enumerate()
            .map(|(hop, v)| {
                self.seq = self.seq.wrapping_add(1);
                self.emitted += 1;
                DtaReport::postcard(self.seq, key, hop as u8, self.hops, *v)
            })
            .collect()
    }
}

/// INT-MD: sink-exported full-path reports via Key-Write.
pub struct IntPathTracing {
    /// Hop bound `B`.
    pub hops: u8,
    /// Switch-ID universe |V|.
    pub values: u32,
    /// Redundancy `N` requested per report.
    pub redundancy: u8,
    seq: u32,
}

impl IntPathTracing {
    /// Path-tracing generator.
    pub fn new(hops: u8, values: u32, redundancy: u8) -> Self {
        IntPathTracing { hops, values, redundancy, seq: 0 }
    }

    /// The sink reports once per packet (the paper's 20 B Key-Write
    /// workload).
    pub fn on_packet(&mut self, pkt: &TracePacket) -> DtaReport {
        let path = synthetic_path(&pkt.flow, self.hops, self.values);
        let mut payload = Vec::with_capacity(4 * self.hops as usize);
        for v in &path {
            payload.extend_from_slice(&v.to_be_bytes());
        }
        self.seq = self.seq.wrapping_add(1);
        DtaReport::key_write(self.seq, TelemetryKey::flow(&pkt.flow), self.redundancy, payload)
    }
}

/// INT congestion events: queue-depth reports appended to a global list.
pub struct IntCongestionEvents {
    /// Queue-depth threshold triggering an event.
    pub threshold: u32,
    /// Target list.
    pub list_id: u32,
    rng: StdRng,
    seq: u32,
}

impl IntCongestionEvents {
    /// Event generator with a synthetic queue model.
    pub fn new(threshold: u32, list_id: u32, seed: u64) -> Self {
        IntCongestionEvents { threshold, list_id, rng: StdRng::seed_from_u64(seed), seq: 0 }
    }

    /// Possibly emit an event for one packet: queue depth is sampled from a
    /// bursty synthetic distribution.
    pub fn on_packet(&mut self, _pkt: &TracePacket) -> Option<DtaReport> {
        // Bursty occupancy: usually shallow, occasionally deep.
        let depth: u32 = if self.rng.gen_bool(0.02) {
            self.rng.gen_range(10_000..100_000)
        } else {
            self.rng.gen_range(0..1_000)
        };
        (depth > self.threshold).then(|| {
            self.seq = self.seq.wrapping_add(1);
            DtaReport::append(self.seq, self.list_id, depth.to_be_bytes().to_vec())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{TraceConfig, TraceGenerator};

    fn pkt() -> TracePacket {
        TracePacket {
            ts_ns: 0,
            flow: FlowTuple::tcp(1, 2, 3, 4),
            size: 100,
            last_of_flow: false,
        }
    }

    #[test]
    fn synthetic_path_is_stable_and_bounded() {
        let f = FlowTuple::tcp(9, 9, 9, 9);
        let a = synthetic_path(&f, 5, 1 << 18);
        let b = synthetic_path(&f, 5, 1 << 18);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|v| *v < (1 << 18)));
    }

    #[test]
    fn different_flows_get_different_paths() {
        let a = synthetic_path(&FlowTuple::tcp(1, 1, 1, 1), 5, 1 << 18);
        let b = synthetic_path(&FlowTuple::tcp(2, 2, 2, 2), 5, 1 << 18);
        assert_ne!(a, b);
    }

    #[test]
    fn sampled_packet_emits_one_postcard_per_hop() {
        let mut int = IntPostcards::new(1.0, 5, 1 << 12, 1);
        let reports = int.on_packet(&pkt());
        assert_eq!(reports.len(), 5);
        assert_eq!(int.emitted, 5);
    }

    #[test]
    fn sampling_rate_is_respected() {
        let mut gen = TraceGenerator::new(TraceConfig::default());
        let mut int = IntPostcards::new(0.005, 5, 1 << 12, 2);
        let n = 100_000;
        for _ in 0..n {
            int.on_packet(&gen.next_packet());
        }
        let rate = int.emitted as f64 / (n as f64 * 5.0);
        assert!((rate - 0.005).abs() < 0.002, "sampling rate {rate}");
    }

    #[test]
    fn path_tracing_payload_is_20_bytes() {
        let mut md = IntPathTracing::new(5, 1 << 18, 2);
        let r = md.on_packet(&pkt());
        assert_eq!(r.payload.len(), 20);
    }

    #[test]
    fn congestion_events_respect_threshold() {
        let mut ce = IntCongestionEvents::new(5_000, 1, 3);
        let mut gen = TraceGenerator::new(TraceConfig::default());
        let mut events = 0;
        for _ in 0..10_000 {
            if let Some(r) = ce.on_packet(&gen.next_packet()) {
                let depth = u32::from_be_bytes(r.payload[..4].try_into().unwrap());
                assert!(depth > 5_000);
                events += 1;
            }
        }
        assert!(events > 50, "too few events: {events}");
        assert!(events < 1_000, "too many events: {events}");
    }
}

/// Bridge from the real INT-MD wire format to a DTA report: the sink parses
/// the metadata stack and exports the switch-ID path as a Key-Write keyed by
/// the flow (Table 2's "INT sinks reporting 5x4B switch IDs using flow
/// 5-tuple keys").
pub fn report_from_stack(
    stack: &crate::int_wire::IntStack,
    flow: &FlowTuple,
    seq: u32,
    redundancy: u8,
) -> DtaReport {
    let mut payload = Vec::with_capacity(stack.hops.len() * 4);
    for id in stack.switch_path() {
        payload.extend_from_slice(&id.to_be_bytes());
    }
    DtaReport::key_write(seq, TelemetryKey::flow(flow), redundancy, payload)
}

#[cfg(test)]
mod wire_bridge_tests {
    use super::*;
    use crate::int_wire::{HopMetadata, IntInstructions, IntStack};

    #[test]
    fn sink_exports_parsed_stack_as_key_write() {
        let instr = IntInstructions(IntInstructions::SWITCH_ID | IntInstructions::HOP_LATENCY);
        let mut stack = IntStack::source(instr, 5);
        for i in 0..5u32 {
            stack.push_hop(HopMetadata {
                switch_id: Some(1000 + i),
                hop_latency: Some(50),
                ..HopMetadata::default()
            });
        }
        // The sink receives the wire bytes, parses, and reports.
        let parsed = IntStack::decode(stack.encode()).unwrap();
        let flow = FlowTuple::tcp(1, 2, 3, 4);
        let report = report_from_stack(&parsed, &flow, 9, 2);
        assert_eq!(report.payload.len(), 20);
        assert_eq!(&report.payload[0..4], &1000u32.to_be_bytes());
        assert_eq!(&report.payload[16..20], &1004u32.to_be_bytes());
        assert_eq!(parsed.total_latency(), 250);
    }
}

//! Sonata: query-driven streaming telemetry (Table 2).
//!
//! Sonata partitions queries between switches and stream processors. Two
//! DTA integrations:
//! * per-query results — "reporting fixed-size network query results using
//!   queryID keys" (Key-Write);
//! * raw data transfer — "appending query-specific packet tuples from
//!   switches to lists at streaming processors" (Append).

use dta_core::{DtaReport, TelemetryKey};

use crate::traces::TracePacket;

/// A Sonata query running partially on the switch.
pub struct SonataQuery {
    /// Query identifier (the Key-Write key).
    pub query_id: u32,
    /// Epoch length in nanoseconds (results export at epoch boundaries).
    pub epoch_ns: u64,
    /// Redundancy for result reports.
    pub redundancy: u8,
    epoch_start: u64,
    /// In-epoch accumulator (e.g., a packet counter for a filter query).
    accumulator: u64,
    seq: u32,
}

impl SonataQuery {
    /// New query with the given epoch.
    pub fn new(query_id: u32, epoch_ns: u64, redundancy: u8) -> Self {
        assert!(epoch_ns > 0);
        SonataQuery { query_id, epoch_ns, redundancy, epoch_start: 0, accumulator: 0, seq: 0 }
    }

    /// Feed a packet that matched the query's filter. At an epoch boundary,
    /// the epoch's result is exported under the query-ID key.
    pub fn on_match(&mut self, pkt: &TracePacket) -> Option<DtaReport> {
        let mut out = None;
        if pkt.ts_ns >= self.epoch_start + self.epoch_ns && self.accumulator > 0 {
            self.seq = self.seq.wrapping_add(1);
            out = Some(DtaReport::key_write(
                self.seq,
                TelemetryKey::query_id(self.query_id),
                self.redundancy,
                self.accumulator.to_be_bytes().to_vec(),
            ));
            self.accumulator = 0;
            self.epoch_start = pkt.ts_ns - pkt.ts_ns % self.epoch_ns;
        }
        self.accumulator += 1;
        out
    }
}

/// Sonata raw-tuple mirroring to a stream processor's list.
pub struct SonataRawTransfer {
    /// Target list at the streaming processor.
    pub list_id: u32,
    seq: u32,
}

impl SonataRawTransfer {
    /// New raw-transfer channel.
    pub fn new(list_id: u32) -> Self {
        SonataRawTransfer { list_id, seq: 0 }
    }

    /// Mirror one matched packet's tuple.
    pub fn on_match(&mut self, pkt: &TracePacket) -> DtaReport {
        self.seq = self.seq.wrapping_add(1);
        DtaReport::append(self.seq, self.list_id, pkt.flow.encode().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::FlowTuple;

    fn pkt(ts: u64) -> TracePacket {
        TracePacket {
            ts_ns: ts,
            flow: FlowTuple::tcp(1, 2, 3, 4),
            size: 64,
            last_of_flow: false,
        }
    }

    #[test]
    fn results_export_at_epoch_boundaries() {
        let mut q = SonataQuery::new(7, 1000, 2);
        assert!(q.on_match(&pkt(0)).is_none());
        assert!(q.on_match(&pkt(500)).is_none());
        let r = q.on_match(&pkt(1500)).expect("epoch result");
        assert_eq!(r.payload, 2u64.to_be_bytes().to_vec());
        // Accumulator restarted: next epoch counts from the boundary packet.
        let r2 = q.on_match(&pkt(2600)).expect("second epoch");
        assert_eq!(r2.payload, 1u64.to_be_bytes().to_vec());
    }

    #[test]
    fn raw_transfer_mirrors_tuples() {
        let mut t = SonataRawTransfer::new(3);
        let r = t.on_match(&pkt(0));
        assert_eq!(r.payload.len(), FlowTuple::ENCODED_LEN);
        if let dta_core::PrimitiveHeader::Append(h) = r.primitive {
            assert_eq!(h.list_id, 3);
        } else {
            panic!("wrong primitive");
        }
    }
}

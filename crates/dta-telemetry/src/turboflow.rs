//! TurboFlow: microflow-record generation on commodity switches (Table 2).
//!
//! TurboFlow keeps a small in-ASIC microflow cache; records evicted by index
//! collisions are exported for aggregation. DTA maps this onto
//! Key-Increment: "sending 4B counters from evicted microflow-records for
//! aggregation using flow key as keys".

use dta_core::{DtaReport, FlowTuple, TelemetryKey};

use crate::traces::TracePacket;

/// The TurboFlow microflow cache.
pub struct TurboFlow {
    /// Direct-mapped cache slots.
    slots: Vec<Option<(FlowTuple, u64)>>,
    /// Redundancy requested per exported record.
    pub redundancy: u8,
    seq: u32,
    /// Evictions exported.
    pub evictions: u64,
}

impl TurboFlow {
    /// Cache with `slots` entries.
    pub fn new(slots: usize, redundancy: u8) -> Self {
        assert!(slots > 0);
        TurboFlow { slots: vec![None; slots], redundancy, seq: 0, evictions: 0 }
    }

    fn index(&self, flow: &FlowTuple) -> usize {
        // Direct-mapped by a cheap hash of the tuple, as in the ASIC.
        let enc = flow.encode();
        let mut acc = 0u64;
        for &b in &enc {
            acc = acc.wrapping_mul(31).wrapping_add(b as u64);
        }
        (acc % self.slots.len() as u64) as usize
    }

    /// Feed one packet; a collision eviction exports the old record.
    pub fn on_packet(&mut self, pkt: &TracePacket) -> Option<DtaReport> {
        let idx = self.index(&pkt.flow);
        match &mut self.slots[idx] {
            Some((flow, count)) if *flow == pkt.flow => {
                *count += 1;
                None
            }
            slot => {
                let evicted = slot.take();
                *slot = Some((pkt.flow, 1));
                evicted.map(|(flow, count)| {
                    self.seq = self.seq.wrapping_add(1);
                    self.evictions += 1;
                    DtaReport::key_increment(
                        self.seq,
                        TelemetryKey::flow(&flow),
                        self.redundancy,
                        count,
                    )
                })
            }
        }
    }

    /// Flush all resident microflow records.
    pub fn flush(&mut self) -> Vec<DtaReport> {
        let mut out = Vec::new();
        for slot in &mut self.slots {
            if let Some((flow, count)) = slot.take() {
                self.seq = self.seq.wrapping_add(1);
                out.push(DtaReport::key_increment(
                    self.seq,
                    TelemetryKey::flow(&flow),
                    self.redundancy,
                    count,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{TraceConfig, TraceGenerator};
    use dta_core::PrimitiveHeader;

    #[test]
    fn totals_preserved_across_evictions() {
        let mut tf = TurboFlow::new(64, 2);
        let mut gen = TraceGenerator::new(TraceConfig::default());
        let n = 20_000u64;
        let mut exported = 0u64;
        for _ in 0..n {
            if let Some(r) = tf.on_packet(&gen.next_packet()) {
                if let PrimitiveHeader::KeyIncrement(h) = r.primitive {
                    exported += h.delta;
                }
            }
        }
        for r in tf.flush() {
            if let PrimitiveHeader::KeyIncrement(h) = r.primitive {
                exported += h.delta;
            }
        }
        assert_eq!(exported, n);
    }

    #[test]
    fn same_flow_aggregates_in_cache() {
        let mut tf = TurboFlow::new(8, 1);
        let f = FlowTuple::tcp(1, 1, 2, 2);
        let p = TracePacket { ts_ns: 0, flow: f, size: 64, last_of_flow: false };
        for _ in 0..100 {
            assert!(tf.on_packet(&p).is_none(), "no evictions for a single flow");
        }
        let flushed = tf.flush();
        assert_eq!(flushed.len(), 1);
        if let PrimitiveHeader::KeyIncrement(h) = flushed[0].primitive {
            assert_eq!(h.delta, 100);
        } else {
            panic!("wrong primitive");
        }
    }

    #[test]
    fn eviction_rate_grows_with_flow_count() {
        let mk = |flows| {
            let mut tf = TurboFlow::new(32, 1);
            let mut gen = TraceGenerator::new(TraceConfig { flows, ..TraceConfig::default() });
            for _ in 0..10_000 {
                tf.on_packet(&gen.next_packet());
            }
            tf.evictions
        };
        assert!(mk(4096) > mk(16), "more flows must evict more");
    }
}

//! Trajectory Sampling (Duffield & Grossglauser) — Table 2's second
//! Postcarding integration.
//!
//! Every switch applies the *same* hash function to invariant packet
//! content; packets whose hash falls in the sampling range are labelled and
//! reported by every hop they traverse. The collector thus sees the full
//! trajectory of a consistent pseudo-random subset of packets: "collection
//! of unique packet labels from all hops for sampled packets".

use dta_core::{DtaReport, TelemetryKey};

use crate::int::synthetic_path;
use crate::traces::TracePacket;

/// A per-switch trajectory-sampling instance.
pub struct TrajectorySampling {
    /// Sampling range: a packet is sampled when `hash(content) < threshold`
    /// (consistent across switches by construction).
    pub threshold: u32,
    /// Hop bound `B`.
    pub hops: u8,
    /// Label universe (reported values are packet labels).
    pub values: u32,
    seq: u32,
    /// Packets sampled.
    pub sampled: u64,
}

impl TrajectorySampling {
    /// Sampler with probability `threshold / 2^32`.
    pub fn new(sampling: f64, hops: u8, values: u32) -> Self {
        assert!((0.0..=1.0).contains(&sampling));
        TrajectorySampling {
            threshold: (sampling * u32::MAX as f64) as u32,
            hops,
            values,
            seq: 0,
            sampled: 0,
        }
    }

    /// The consistent content hash all switches compute (over invariant
    /// header fields — here the flow tuple and packet size stand in for the
    /// invariant bytes).
    pub fn content_hash(pkt: &TracePacket) -> u32 {
        let enc = pkt.flow.encode();
        let mut acc = 0x811C_9DC5u32;
        for &b in enc.iter().chain(pkt.size.to_be_bytes().iter()) {
            acc = (acc ^ b as u32).wrapping_mul(0x0100_0193);
        }
        acc
    }

    /// The packet's label (what each hop reports).
    pub fn label(&self, pkt: &TracePacket) -> u32 {
        Self::content_hash(pkt).wrapping_mul(0x9E37_79B9) % self.values
    }

    /// Process one packet: if sampled, every hop emits one postcard keyed by
    /// the packet's content hash, carrying the packet label.
    pub fn on_packet(&mut self, pkt: &TracePacket) -> Vec<DtaReport> {
        if Self::content_hash(pkt) >= self.threshold {
            return Vec::new();
        }
        self.sampled += 1;
        let key = TelemetryKey::from_u64(Self::content_hash(pkt) as u64 | (1 << 40));
        let label = self.label(pkt);
        // Every traversed hop reports the label; the trajectory is the
        // sequence of hops that saw it (their path positions).
        let path = synthetic_path(&pkt.flow, self.hops, self.values);
        (0..path.len() as u8)
            .map(|hop| {
                self.seq = self.seq.wrapping_add(1);
                DtaReport::postcard(self.seq, key, hop, self.hops, label)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{TraceConfig, TraceGenerator};
    use dta_core::FlowTuple;

    fn pkt() -> TracePacket {
        TracePacket {
            ts_ns: 0,
            flow: FlowTuple::tcp(1, 2, 3, 4),
            size: 64,
            last_of_flow: false,
        }
    }

    #[test]
    fn sampling_is_consistent_across_switches() {
        // Two independent instances (two switches) must sample the same
        // packets — the core trajectory-sampling property.
        let mut a = TrajectorySampling::new(0.1, 5, 1 << 12);
        let mut b = TrajectorySampling::new(0.1, 5, 1 << 12);
        let mut gen = TraceGenerator::new(TraceConfig::default());
        for _ in 0..5_000 {
            let p = gen.next_packet();
            assert_eq!(a.on_packet(&p).is_empty(), b.on_packet(&p).is_empty());
        }
        assert_eq!(a.sampled, b.sampled);
        assert!(a.sampled > 0);
    }

    #[test]
    fn sampled_packet_reports_every_hop_with_same_label() {
        let mut ts = TrajectorySampling::new(1.0, 5, 1 << 12);
        let reports = ts.on_packet(&pkt());
        assert_eq!(reports.len(), 5);
        let labels: Vec<u32> = reports
            .iter()
            .map(|r| match r.primitive {
                dta_core::PrimitiveHeader::Postcarding(h) => h.value,
                _ => panic!("wrong primitive"),
            })
            .collect();
        assert!(labels.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn sampling_rate_tracks_threshold() {
        let mut ts = TrajectorySampling::new(0.05, 5, 1 << 12);
        let mut gen = TraceGenerator::new(TraceConfig::default());
        let n = 50_000;
        for _ in 0..n {
            ts.on_packet(&gen.next_packet());
        }
        let rate = ts.sampled as f64 / n as f64;
        // Hash consistency means identical packets sample identically;
        // Zipf-repeated flows widen the variance, so just check magnitude.
        assert!(rate > 0.005 && rate < 0.3, "rate {rate}");
    }
}

//! Marple queries (Figure 7b's three workloads + host counters).
//!
//! Marple compiles performance queries to switch programs whose results
//! stream to a backing store. The paper integrates three queries with DTA:
//!
//! * **Lossy Flows** — "reports high loss rates together with their
//!   corresponding flow 5-tuples, and DTA uses the Append primitive to
//!   store the data chronologically in several lists ... with packet loss
//!   rates in one of several ranges".
//! * **TCP Timeouts** — "reports the number of TCP timeouts per-flow ...
//!   DTA uses the Key-Write primitive".
//! * **Flowlet Sizes** — "reports flow 5-tuples together with the number of
//!   packets in their most recent flowlets, and DTA appends the flow
//!   identifiers to one of the available lists".
//!
//! Host counters map to Key-Increment (Table 2).

use std::collections::HashMap;

use dta_core::{DtaReport, FlowTuple, TelemetryKey};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traces::TracePacket;

/// Marple "Flowlet Sizes": a flowlet ends when a flow pauses longer than the
/// gap threshold; the report is the 5-tuple plus the flowlet's packet count.
pub struct MarpleFlowletSizes {
    /// Inter-packet gap that splits flowlets, in nanoseconds (500 µs in the
    /// Marple paper).
    pub gap_ns: u64,
    /// Base list id; reports land in `base_list + (count bucket)`.
    pub base_list: u32,
    /// Number of size-bucket lists.
    pub buckets: u32,
    state: HashMap<FlowTuple, (u64, u32)>,
    seq: u32,
    /// Flowlet reports emitted.
    pub emitted: u64,
}

impl MarpleFlowletSizes {
    /// Flowlet tracker.
    pub fn new(gap_ns: u64, base_list: u32, buckets: u32) -> Self {
        assert!(buckets >= 1);
        MarpleFlowletSizes {
            gap_ns,
            base_list,
            buckets,
            state: HashMap::new(),
            seq: 0,
            emitted: 0,
        }
    }

    fn bucket(&self, count: u32) -> u32 {
        // Log2 size buckets: 1, 2-3, 4-7, ...
        (32 - count.leading_zeros()).min(self.buckets) .saturating_sub(1)
    }

    /// Feed one packet; emits a report when the previous flowlet of this
    /// flow closed.
    pub fn on_packet(&mut self, pkt: &TracePacket) -> Option<DtaReport> {
        let entry = self.state.entry(pkt.flow).or_insert((pkt.ts_ns, 0));
        let (last_ts, count) = *entry;
        if count > 0 && pkt.ts_ns.saturating_sub(last_ts) > self.gap_ns {
            // Flowlet closed: report it, start a new one.
            *entry = (pkt.ts_ns, 1);
            self.seq = self.seq.wrapping_add(1);
            self.emitted += 1;
            let mut payload = pkt.flow.encode().to_vec(); // 13 B (Table 1)
            payload.extend_from_slice(&count.to_be_bytes());
            let list = self.base_list + self.bucket(count);
            Some(DtaReport::append(self.seq, list, payload))
        } else {
            *entry = (pkt.ts_ns, count + 1);
            None
        }
    }
}

/// Marple "TCP Timeouts": per-flow timeout counters exported via Key-Write
/// so operators can query any flow's count.
pub struct MarpleTcpTimeouts {
    /// Probability a packet represents a timeout episode (synthetic stand-in
    /// for RTO detection).
    pub timeout_prob: f64,
    /// Redundancy requested per report.
    pub redundancy: u8,
    counts: HashMap<FlowTuple, u32>,
    rng: StdRng,
    seq: u32,
}

impl MarpleTcpTimeouts {
    /// Timeout tracker.
    pub fn new(timeout_prob: f64, redundancy: u8, seed: u64) -> Self {
        MarpleTcpTimeouts {
            timeout_prob,
            redundancy,
            counts: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
        }
    }

    /// Feed one packet; on a timeout episode the flow's updated count is
    /// (re-)written under its key.
    pub fn on_packet(&mut self, pkt: &TracePacket) -> Option<DtaReport> {
        if !self.rng.gen_bool(self.timeout_prob) {
            return None;
        }
        let count = self.counts.entry(pkt.flow).or_insert(0);
        *count += 1;
        self.seq = self.seq.wrapping_add(1);
        Some(DtaReport::key_write(
            self.seq,
            TelemetryKey::flow(&pkt.flow),
            self.redundancy,
            count.to_be_bytes().to_vec(),
        ))
    }

    /// The true timeout count for a flow (test oracle).
    pub fn true_count(&self, flow: &FlowTuple) -> u32 {
        self.counts.get(flow).copied().unwrap_or(0)
    }
}

/// Marple "Lossy Flows": flows whose loss rate exceeds a threshold are
/// appended to a list chosen by loss-rate range.
pub struct MarpleLossyFlows {
    /// Report when a flow's observed loss rate exceeds this.
    pub threshold: f64,
    /// Base list id; list = base + range index (e.g., <1%, 1-5%, >5%).
    pub base_list: u32,
    /// Synthetic per-packet loss probability.
    pub loss_prob: f64,
    windows: HashMap<FlowTuple, (u32, u32)>,
    /// Packets per evaluation window.
    pub window: u32,
    rng: StdRng,
    seq: u32,
}

impl MarpleLossyFlows {
    /// Lossy-flow detector.
    pub fn new(threshold: f64, base_list: u32, loss_prob: f64, window: u32, seed: u64) -> Self {
        assert!(window > 0);
        MarpleLossyFlows {
            threshold,
            base_list,
            loss_prob,
            windows: HashMap::new(),
            window,
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
        }
    }

    fn range_index(&self, rate: f64) -> u32 {
        if rate < 0.01 {
            0
        } else if rate < 0.05 {
            1
        } else {
            2
        }
    }

    /// Feed one packet; a report fires when a window closes lossy.
    pub fn on_packet(&mut self, pkt: &TracePacket) -> Option<DtaReport> {
        let lost = self.rng.gen_bool(self.loss_prob);
        let (pkts, losses) = self.windows.entry(pkt.flow).or_insert((0, 0));
        *pkts += 1;
        if lost {
            *losses += 1;
        }
        if *pkts < self.window {
            return None;
        }
        let rate = *losses as f64 / *pkts as f64;
        self.windows.remove(&pkt.flow);
        if rate <= self.threshold {
            return None;
        }
        self.seq = self.seq.wrapping_add(1);
        let payload = pkt.flow.encode().to_vec(); // 13 B flow id
        Some(DtaReport::append(self.seq, self.base_list + self.range_index(rate), payload))
    }
}

/// Marple host counters via addition-based aggregation (Key-Increment):
/// switches evict partial per-source counters which the collector sums.
pub struct MarpleHostCounters {
    /// Eviction cache size (counters evict when the cache is full).
    pub cache_slots: usize,
    /// Redundancy requested per report.
    pub redundancy: u8,
    cache: HashMap<u32, u64>,
    seq: u32,
}

impl MarpleHostCounters {
    /// Host-counter tracker.
    pub fn new(cache_slots: usize, redundancy: u8) -> Self {
        assert!(cache_slots > 0);
        MarpleHostCounters { cache_slots, redundancy, cache: HashMap::new(), seq: 0 }
    }

    /// Feed one packet; an eviction (cache full, new source) exports the
    /// evicted counter as a Key-Increment delta.
    pub fn on_packet(&mut self, pkt: &TracePacket) -> Option<DtaReport> {
        let src = pkt.flow.src_ip;
        if let Some(c) = self.cache.get_mut(&src) {
            *c += 1;
            return None;
        }
        let evict = if self.cache.len() >= self.cache_slots {
            // Evict an arbitrary victim (hardware evicts by index collision).
            let victim = *self.cache.keys().next().expect("cache non-empty");
            let count = self.cache.remove(&victim).expect("victim present");
            Some((victim, count))
        } else {
            None
        };
        self.cache.insert(src, 1);
        evict.map(|(ip, count)| {
            self.seq = self.seq.wrapping_add(1);
            DtaReport::key_increment(self.seq, TelemetryKey::src_ip(ip), self.redundancy, count)
        })
    }

    /// Flush all cached counters (end of run).
    pub fn flush(&mut self) -> Vec<DtaReport> {
        let drained: Vec<(u32, u64)> = self.cache.drain().collect();
        drained
            .into_iter()
            .map(|(ip, count)| {
                self.seq = self.seq.wrapping_add(1);
                DtaReport::key_increment(
                    self.seq,
                    TelemetryKey::src_ip(ip),
                    self.redundancy,
                    count,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{TraceConfig, TraceGenerator};

    #[test]
    fn flowlets_split_on_gap() {
        let mut m = MarpleFlowletSizes::new(1000, 0, 8);
        let f = FlowTuple::tcp(1, 1, 2, 2);
        let mk = |ts| TracePacket { ts_ns: ts, flow: f, size: 64, last_of_flow: false };
        assert!(m.on_packet(&mk(0)).is_none());
        assert!(m.on_packet(&mk(100)).is_none());
        assert!(m.on_packet(&mk(200)).is_none());
        // Gap > 1000ns closes the 3-packet flowlet.
        let r = m.on_packet(&mk(5000)).expect("flowlet report");
        assert_eq!(&r.payload[13..17], &3u32.to_be_bytes());
        assert_eq!(m.emitted, 1);
    }

    #[test]
    fn flowlet_rate_on_dc_trace_is_plausible() {
        let mut gen = TraceGenerator::new(TraceConfig::default());
        let mut m = MarpleFlowletSizes::new(500_000, 0, 8);
        let n = 100_000;
        for _ in 0..n {
            m.on_packet(&gen.next_packet());
        }
        // With thousands of flows sharing the aggregate, most flows pause
        // longer than 500us between packets; a meaningful fraction of
        // packets should close flowlets.
        assert!(m.emitted > 100, "only {} flowlets in {n} packets", m.emitted);
    }

    #[test]
    fn timeouts_accumulate_per_flow() {
        let mut m = MarpleTcpTimeouts::new(1.0, 2, 1);
        let f = FlowTuple::tcp(1, 1, 2, 2);
        let p = TracePacket { ts_ns: 0, flow: f, size: 64, last_of_flow: false };
        for want in 1..=5u32 {
            let r = m.on_packet(&p).expect("always times out at prob 1");
            assert_eq!(r.payload, want.to_be_bytes().to_vec());
        }
        assert_eq!(m.true_count(&f), 5);
    }

    #[test]
    fn lossy_flows_only_report_above_threshold() {
        // loss_prob 0 -> never reports.
        let mut quiet = MarpleLossyFlows::new(0.01, 0, 0.0, 10, 1);
        // loss_prob 0.5 -> every window reports.
        let mut noisy = MarpleLossyFlows::new(0.01, 0, 0.5, 10, 1);
        let f = FlowTuple::tcp(1, 1, 2, 2);
        let p = TracePacket { ts_ns: 0, flow: f, size: 64, last_of_flow: false };
        let mut quiet_reports = 0;
        let mut noisy_reports = 0;
        for _ in 0..1000 {
            quiet_reports += quiet.on_packet(&p).is_some() as u32;
            noisy_reports += noisy.on_packet(&p).is_some() as u32;
        }
        assert_eq!(quiet_reports, 0);
        assert!(noisy_reports >= 90, "noisy flow under-reported: {noisy_reports}");
    }

    #[test]
    fn lossy_flow_lists_bucket_by_rate() {
        let m = MarpleLossyFlows::new(0.0, 10, 0.0, 1, 1);
        assert_eq!(m.range_index(0.005), 0);
        assert_eq!(m.range_index(0.02), 1);
        assert_eq!(m.range_index(0.5), 2);
    }

    #[test]
    fn host_counter_evictions_preserve_totals() {
        let mut m = MarpleHostCounters::new(4, 2);
        let mut gen = TraceGenerator::new(TraceConfig {
            hosts: 32,
            ..TraceConfig::default()
        });
        let mut reported: u64 = 0;
        let n = 5000;
        for _ in 0..n {
            if let Some(r) = m.on_packet(&gen.next_packet()) {
                if let dta_core::PrimitiveHeader::KeyIncrement(h) = r.primitive {
                    reported += h.delta;
                }
            }
        }
        for r in m.flush() {
            if let dta_core::PrimitiveHeader::KeyIncrement(h) = r.primitive {
                reported += h.delta;
            }
        }
        assert_eq!(reported, n, "evicted + flushed counters must sum to packets");
    }
}

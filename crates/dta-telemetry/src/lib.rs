//! Telemetry monitoring systems and workloads.
//!
//! DTA is a *collection* system: the actual telemetry is produced by
//! existing monitoring systems running on switches. Table 2 of the paper
//! maps each state-of-the-art system onto a DTA primitive; this crate
//! implements those producers so the end-to-end experiments run against the
//! workloads the paper names:
//!
//! * [`int`] — In-band Network Telemetry: XD/MX postcards, MD path tracing,
//!   congestion events.
//! * [`marple`] — Marple queries: flowlet sizes, TCP timeouts, lossy flows,
//!   host counters.
//! * [`netseer`] — NetSeer loss events (18 B, Append).
//! * [`turboflow`] — TurboFlow evicted microflow records (Key-Increment).
//! * [`sonata`] — Sonata query results (Key-Write) and raw tuples (Append).
//! * [`packetscope`] — PacketScope flow traversal info and pipeline-loss
//!   events.
//! * [`dshark`] — dShark parser-to-grouper packet summaries.
//! * [`pint`] — PINT-style sampled per-flow reports.
//! * [`traces`] — synthetic data-center traffic (heavy-tailed flows, Zipf
//!   popularity) standing in for the Benson et al. traces of §6.1.
//! * [`rates`] — the Table 1 per-switch report-rate model.

pub mod dshark;
pub mod int;
pub mod int_wire;
pub mod marple;
pub mod netseer;
pub mod packetscope;
pub mod pint;
pub mod rates;
pub mod sonata;
pub mod traces;
pub mod trajectory;
pub mod turboflow;

pub use rates::{MonitoringSystem, ReportRateModel};
pub use traces::{TracePacket, TraceConfig, TraceGenerator};

/// Every Table 2 integration: `(system, monitoring task, primitive)`.
/// Exercised by the T2 experiment to prove primitive coverage.
pub const TABLE2_INTEGRATIONS: &[(&str, &str, &str)] = &[
    ("INT-MD", "Path Tracing", "Key-Write"),
    ("Marple", "Host counters (non-merging)", "Key-Write"),
    ("PacketScope", "Flow troubleshooting", "Key-Write"),
    ("PINT", "Per-flow queries", "Key-Write"),
    ("Sonata", "Per-query results", "Key-Write"),
    ("INT-XD/MX", "Path Measurements", "Postcarding"),
    ("Trajectory Sampling", "Path Frequencies", "Postcarding"),
    ("dShark", "Parser-Grouper transfer", "Append"),
    ("INT", "Congestion events", "Append"),
    ("Marple", "Lossy connections", "Append"),
    ("NetSeer", "Loss events", "Append"),
    ("PacketScope", "Pipeline-loss insight", "Append"),
    ("Sonata", "Raw data transfer", "Append"),
    ("Marple", "Host counters (addition)", "Key-Increment"),
    ("TurboFlow", "Per-flow counters", "Key-Increment"),
];

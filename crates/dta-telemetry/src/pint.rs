//! PINT: probabilistic in-band network telemetry (Table 2).
//!
//! PINT compresses INT by having each packet carry only a probabilistic
//! 1-byte digest; per-flow state reconstructs at the collector. The DTA
//! mapping: "1B reports with 5-tuple keys, using redundancies for data
//! compression through n = f(pktID)" — i.e., the redundancy copy index is a
//! deterministic function of the packet ID, spreading successive digests of
//! a flow across the key's redundancy slots.

use dta_core::{DtaReport, TelemetryKey};

use crate::int::synthetic_path;
use crate::traces::TracePacket;

/// PINT per-flow digest reporter.
pub struct Pint {
    /// Redundancy slots the flow's digests rotate across.
    pub redundancy: u8,
    /// Switch-ID universe used to derive digests.
    pub values: u32,
    seq: u32,
    pkt_id: u64,
}

impl Pint {
    /// PINT with the given slot count.
    pub fn new(redundancy: u8, values: u32) -> Self {
        assert!(redundancy >= 1);
        Pint { redundancy, values, seq: 0, pkt_id: 0 }
    }

    /// One 1 B digest per packet. The redundancy *level* is fixed, but the
    /// copy a digest lands in rotates with the packet ID (`n = f(pktID)`),
    /// which DTA expresses by requesting redundancy 1 and letting the key
    /// vary per copy index.
    pub fn on_packet(&mut self, pkt: &TracePacket) -> DtaReport {
        self.pkt_id += 1;
        self.seq = self.seq.wrapping_add(1);
        let slot = (self.pkt_id % self.redundancy as u64) as u8;
        // Digest: one byte of the path's hop chosen by the rotation.
        let path = synthetic_path(&pkt.flow, self.redundancy, self.values);
        let digest = (path[slot as usize] & 0xFF) as u8;
        // Key embeds the slot index so successive digests of the same flow
        // occupy distinct KW slots.
        let mut key_bytes = pkt.flow.encode().to_vec();
        key_bytes.push(slot);
        key_bytes.truncate(15);
        DtaReport::key_write(self.seq, TelemetryKey::raw(&key_bytes), 1, vec![digest])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::{FlowTuple, PrimitiveHeader};

    #[test]
    fn digests_rotate_across_slots() {
        let mut p = Pint::new(4, 1 << 12);
        let f = FlowTuple::tcp(1, 2, 3, 4);
        let mk = || TracePacket { ts_ns: 0, flow: f, size: 64, last_of_flow: false };
        let keys: Vec<_> = (0..4)
            .map(|_| match p.on_packet(&mk()).primitive {
                PrimitiveHeader::KeyWrite(h) => h.key,
                _ => panic!("wrong primitive"),
            })
            .collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(keys[i], keys[j], "slots {i},{j} alias");
            }
        }
    }

    #[test]
    fn reports_are_one_byte() {
        let mut p = Pint::new(2, 1 << 12);
        let f = FlowTuple::tcp(1, 2, 3, 4);
        let r = p.on_packet(&TracePacket { ts_ns: 0, flow: f, size: 64, last_of_flow: false });
        assert_eq!(r.payload.len(), 1);
    }
}

//! NetSeer: flow event telemetry — packet loss events (Table 1/2).
//!
//! NetSeer detects in-switch packet drops and exports coalesced loss events.
//! Each event is 18 B (flow 5-tuple 13 B + event type 1 B + sequence range
//! 4 B) appended to a network-wide loss-event list.

use dta_core::DtaReport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traces::TracePacket;

/// Loss-event categories NetSeer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LossKind {
    /// Tail drop at a congested queue.
    Congestion = 1,
    /// Pipeline drop (ACL, parse error).
    Pipeline = 2,
    /// Link corruption drop.
    Corruption = 3,
}

/// The NetSeer reporter.
pub struct NetSeer {
    /// Per-packet drop probability (synthetic; NetSeer's paper reports
    /// ~0.01-0.1% in production).
    pub loss_prob: f64,
    /// Consecutive losses of one flow coalesce into one event up to this
    /// count.
    pub coalesce: u32,
    /// Target list.
    pub list_id: u32,
    rng: StdRng,
    seq: u32,
    pending: Option<(TracePacket, u32)>,
    /// Events emitted.
    pub emitted: u64,
}

impl NetSeer {
    /// NetSeer with the given synthetic loss probability.
    pub fn new(loss_prob: f64, coalesce: u32, list_id: u32, seed: u64) -> Self {
        assert!(coalesce >= 1);
        NetSeer {
            loss_prob,
            coalesce,
            list_id,
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
            pending: None,
            emitted: 0,
        }
    }

    /// The 18 B event payload.
    fn event_payload(pkt: &TracePacket, kind: LossKind, count: u32) -> Vec<u8> {
        let mut p = pkt.flow.encode().to_vec(); // 13 B
        p.push(kind as u8); // 1 B
        p.extend_from_slice(&count.to_be_bytes()); // 4 B
        debug_assert_eq!(p.len(), 18);
        p
    }

    /// Feed one packet; emits an event when a coalesced loss closes.
    pub fn on_packet(&mut self, pkt: &TracePacket) -> Option<DtaReport> {
        let dropped = self.rng.gen_bool(self.loss_prob);
        if dropped {
            match &mut self.pending {
                Some((first, count)) if first.flow == pkt.flow && *count < self.coalesce => {
                    *count += 1;
                    return None;
                }
                _ => {
                    let flushed = self.flush();
                    self.pending = Some((*pkt, 1));
                    return flushed;
                }
            }
        }
        None
    }

    /// Flush any pending coalesced event.
    pub fn flush(&mut self) -> Option<DtaReport> {
        let (pkt, count) = self.pending.take()?;
        self.seq = self.seq.wrapping_add(1);
        self.emitted += 1;
        Some(DtaReport::append(
            self.seq,
            self.list_id,
            Self::event_payload(&pkt, LossKind::Congestion, count),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{TraceConfig, TraceGenerator};
    use dta_core::FlowTuple;

    #[test]
    fn event_payload_is_18_bytes() {
        let pkt = TracePacket {
            ts_ns: 0,
            flow: FlowTuple::tcp(1, 2, 3, 4),
            size: 64,
            last_of_flow: false,
        };
        assert_eq!(NetSeer::event_payload(&pkt, LossKind::Congestion, 3).len(), 18);
    }

    #[test]
    fn no_loss_no_events() {
        let mut ns = NetSeer::new(0.0, 8, 0, 1);
        let mut gen = TraceGenerator::new(TraceConfig::default());
        for _ in 0..1000 {
            assert!(ns.on_packet(&gen.next_packet()).is_none());
        }
        assert!(ns.flush().is_none());
    }

    #[test]
    fn losses_coalesce_per_flow() {
        let mut ns = NetSeer::new(1.0, 4, 0, 1);
        let f = FlowTuple::tcp(1, 1, 2, 2);
        let p = TracePacket { ts_ns: 0, flow: f, size: 64, last_of_flow: false };
        // 4 drops of the same flow coalesce; the 5th starts a new event and
        // flushes the first.
        for _ in 0..4 {
            assert!(ns.on_packet(&p).is_none());
        }
        let r = ns.on_packet(&p).expect("coalesced event flushed");
        assert_eq!(&r.payload[14..18], &4u32.to_be_bytes());
    }

    #[test]
    fn event_rate_tracks_loss_probability() {
        let mut ns = NetSeer::new(0.001, 1, 0, 7);
        let mut gen = TraceGenerator::new(TraceConfig::default());
        let n = 200_000;
        for _ in 0..n {
            ns.on_packet(&gen.next_packet());
        }
        let rate = ns.emitted as f64 / n as f64;
        assert!((rate - 0.001).abs() < 5e-4, "event rate {rate}");
    }
}

//! INT-MD wire format (Telemetry Report / INT metadata stack).
//!
//! The P4.org telemetry report specification \[21\] defines how INT metadata
//! accumulates in packets: a 12-byte INT-MD header (version, hop count,
//! instruction bitmap, remaining-hop budget) followed by one fixed-size
//! metadata word per instruction per hop. "The INT standard requires that
//! each value is reported using exactly four bytes" — which is exactly the
//! constraint DTA's Postcarding slot width inherits.
//!
//! DTA sinks parse this stack to produce their reports; implementing the
//! real format means the reporter exercises genuine INT parsing, not a
//! synthetic shortcut.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dta_core::report::ReportError;

/// INT instruction bits (subset of the spec's bitmap, MSB-first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntInstructions(pub u16);

impl IntInstructions {
    /// Bit 0: switch ID.
    pub const SWITCH_ID: u16 = 0x8000;
    /// Bit 1: ingress+egress port IDs.
    pub const PORT_IDS: u16 = 0x4000;
    /// Bit 2: hop latency.
    pub const HOP_LATENCY: u16 = 0x2000;
    /// Bit 3: queue ID + occupancy.
    pub const QUEUE_OCCUPANCY: u16 = 0x1000;

    /// Number of 4-byte metadata words each hop pushes.
    pub fn words_per_hop(self) -> usize {
        (self.0 & 0xF000).count_ones() as usize
    }

    /// Whether an instruction bit is requested.
    pub fn has(self, bit: u16) -> bool {
        self.0 & bit != 0
    }
}

/// The INT-MD shim + metadata header (12 bytes in the v2.0 report spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntMdHeader {
    /// Spec version (2 for v2.0).
    pub version: u8,
    /// Per-hop metadata length in 4-byte words.
    pub hop_ml: u8,
    /// Remaining hop budget (decremented per hop; 0 = stop inserting).
    pub remaining_hops: u8,
    /// Instruction bitmap.
    pub instructions: IntInstructions,
}

impl IntMdHeader {
    /// Encoded size.
    pub const LEN: usize = 12;

    /// Header requesting `instructions` over at most `max_hops` hops.
    pub fn new(instructions: IntInstructions, max_hops: u8) -> Self {
        IntMdHeader {
            version: 2,
            hop_ml: instructions.words_per_hop() as u8,
            remaining_hops: max_hops,
            instructions,
        }
    }

    /// Serialize.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.version << 4);
        buf.put_u8(0); // flags (D/E/M) unused here
        buf.put_u8(self.hop_ml);
        buf.put_u8(self.remaining_hops);
        buf.put_u16(self.instructions.0);
        buf.put_u16(0); // domain-specific ID
        buf.put_u32(0); // domain-specific instructions/flags
    }

    /// Deserialize.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, ReportError> {
        if buf.remaining() < Self::LEN {
            return Err(ReportError::Truncated { need: Self::LEN, have: buf.remaining() });
        }
        let version = buf.get_u8() >> 4;
        if version != 2 {
            return Err(ReportError::BadVersion(version));
        }
        let _flags = buf.get_u8();
        let hop_ml = buf.get_u8();
        let remaining_hops = buf.get_u8();
        let instructions = IntInstructions(buf.get_u16());
        let _ds_id = buf.get_u16();
        let _ds_instr = buf.get_u32();
        Ok(IntMdHeader { version, hop_ml, remaining_hops, instructions })
    }
}

/// One hop's metadata, as pushed by a transit switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HopMetadata {
    /// Switch ID (present iff requested).
    pub switch_id: Option<u32>,
    /// Packed ingress(16) | egress(16) ports.
    pub ports: Option<u32>,
    /// Hop latency in ns.
    pub hop_latency: Option<u32>,
    /// Packed queue id(8) | occupancy(24).
    pub queue: Option<u32>,
}

impl HopMetadata {
    /// Serialize in instruction-bitmap order.
    pub fn encode<B: BufMut>(&self, instr: IntInstructions, buf: &mut B) {
        if instr.has(IntInstructions::SWITCH_ID) {
            buf.put_u32(self.switch_id.unwrap_or(0));
        }
        if instr.has(IntInstructions::PORT_IDS) {
            buf.put_u32(self.ports.unwrap_or(0));
        }
        if instr.has(IntInstructions::HOP_LATENCY) {
            buf.put_u32(self.hop_latency.unwrap_or(0));
        }
        if instr.has(IntInstructions::QUEUE_OCCUPANCY) {
            buf.put_u32(self.queue.unwrap_or(0));
        }
    }

    /// Deserialize in instruction-bitmap order.
    pub fn decode<B: Buf>(instr: IntInstructions, buf: &mut B) -> Result<Self, ReportError> {
        let need = instr.words_per_hop() * 4;
        if buf.remaining() < need {
            return Err(ReportError::Truncated { need, have: buf.remaining() });
        }
        let mut md = HopMetadata::default();
        if instr.has(IntInstructions::SWITCH_ID) {
            md.switch_id = Some(buf.get_u32());
        }
        if instr.has(IntInstructions::PORT_IDS) {
            md.ports = Some(buf.get_u32());
        }
        if instr.has(IntInstructions::HOP_LATENCY) {
            md.hop_latency = Some(buf.get_u32());
        }
        if instr.has(IntInstructions::QUEUE_OCCUPANCY) {
            md.queue = Some(buf.get_u32());
        }
        Ok(md)
    }
}

/// A full INT metadata stack as it arrives at the sink: header + newest-
/// first per-hop metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntStack {
    /// The MD header.
    pub header: IntMdHeader,
    /// Per-hop metadata, hop 0 (first switch) first.
    pub hops: Vec<HopMetadata>,
}

impl IntStack {
    /// Start an empty stack at the INT source.
    pub fn source(instructions: IntInstructions, max_hops: u8) -> Self {
        IntStack { header: IntMdHeader::new(instructions, max_hops), hops: Vec::new() }
    }

    /// A transit switch pushes its metadata (decrementing the hop budget);
    /// returns false when the budget is exhausted (the switch forwards
    /// without inserting, per the spec's E-bit behaviour).
    pub fn push_hop(&mut self, md: HopMetadata) -> bool {
        if self.header.remaining_hops == 0 {
            return false;
        }
        self.header.remaining_hops -= 1;
        self.hops.push(md);
        true
    }

    /// Serialize the full stack.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(
            IntMdHeader::LEN + self.hops.len() * self.header.hop_ml as usize * 4,
        );
        self.header.encode(&mut buf);
        // On the wire the newest hop is on top (LIFO); the sink reverses.
        for hop in self.hops.iter().rev() {
            hop.encode(self.header.instructions, &mut buf);
        }
        buf.freeze()
    }

    /// Parse a stack at the sink. `total_hops` is recovered from the stack
    /// length and `hop_ml`.
    pub fn decode(mut buf: Bytes) -> Result<Self, ReportError> {
        let header = IntMdHeader::decode(&mut buf)?;
        let per_hop = header.hop_ml as usize * 4;
        if per_hop == 0 {
            return Ok(IntStack { header, hops: Vec::new() });
        }
        if !buf.remaining().is_multiple_of(per_hop) {
            return Err(ReportError::Truncated { need: per_hop, have: buf.remaining() % per_hop });
        }
        let mut hops = Vec::with_capacity(buf.remaining() / per_hop);
        while buf.has_remaining() {
            hops.push(HopMetadata::decode(header.instructions, &mut buf)?);
        }
        hops.reverse(); // wire order is newest-first
        Ok(IntStack { header, hops })
    }

    /// Extract the switch-ID path (what INT-MD path tracing reports via
    /// Key-Write).
    pub fn switch_path(&self) -> Vec<u32> {
        self.hops.iter().filter_map(|h| h.switch_id).collect()
    }

    /// Sum of per-hop latencies (the §7 end-to-end delay query input).
    pub fn total_latency(&self) -> u64 {
        self.hops.iter().filter_map(|h| h.hop_latency).map(u64::from).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_instr() -> IntInstructions {
        IntInstructions(
            IntInstructions::SWITCH_ID
                | IntInstructions::HOP_LATENCY
                | IntInstructions::QUEUE_OCCUPANCY,
        )
    }

    #[test]
    fn stack_accumulates_and_roundtrips() {
        let mut stack = IntStack::source(full_instr(), 8);
        for hop in 0..5u32 {
            assert!(stack.push_hop(HopMetadata {
                switch_id: Some(100 + hop),
                hop_latency: Some(10 * hop),
                queue: Some(hop),
                ports: None,
            }));
        }
        let wire = stack.encode();
        let parsed = IntStack::decode(wire).unwrap();
        assert_eq!(parsed, stack);
        assert_eq!(parsed.switch_path(), vec![100, 101, 102, 103, 104]);
        assert_eq!(parsed.total_latency(), 10 + 20 + 30 + 40);
    }

    #[test]
    fn hop_budget_enforced() {
        let mut stack = IntStack::source(full_instr(), 2);
        assert!(stack.push_hop(HopMetadata::default()));
        assert!(stack.push_hop(HopMetadata::default()));
        assert!(!stack.push_hop(HopMetadata::default()), "budget exhausted");
        assert_eq!(stack.hops.len(), 2);
    }

    #[test]
    fn words_per_hop_matches_bitmap() {
        assert_eq!(full_instr().words_per_hop(), 3);
        assert_eq!(IntInstructions(IntInstructions::SWITCH_ID).words_per_hop(), 1);
        assert_eq!(IntInstructions(0).words_per_hop(), 0);
    }

    #[test]
    fn five_hop_switch_id_stack_is_20_bytes_of_metadata() {
        // The paper's 20B path-tracing payload: 5 hops x 4B switch IDs.
        let instr = IntInstructions(IntInstructions::SWITCH_ID);
        let mut stack = IntStack::source(instr, 5);
        for i in 0..5 {
            stack.push_hop(HopMetadata { switch_id: Some(i), ..HopMetadata::default() });
        }
        assert_eq!(stack.encode().len(), IntMdHeader::LEN + 20);
    }

    #[test]
    fn truncated_stack_rejected() {
        let mut stack = IntStack::source(full_instr(), 5);
        stack.push_hop(HopMetadata { switch_id: Some(1), ..HopMetadata::default() });
        let wire = stack.encode();
        let short = wire.slice(0..wire.len() - 3);
        assert!(IntStack::decode(short).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut stack = IntStack::source(full_instr(), 5).encode().to_vec();
        stack[0] = 0x10; // version 1
        assert!(IntStack::decode(Bytes::from(stack)).is_err());
    }
}

//! The Table 1 report-rate model.
//!
//! "Per-reporter data generation rates by various monitoring systems ...
//! Numbers are based on 6.4Tbps switches" under "a standard load of ≈40%".
//! The model derives packets/s from switch capacity, load, and average
//! packet size, then applies each system's per-packet report factor. With
//! the paper's assumptions it reproduces Table 1's published rates.

use serde::{Deserialize, Serialize};

/// The monitoring systems of Table 1 (plus Marple host counters used by
/// later experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MonitoringSystem {
    /// INT postcards with per-hop latency at 0.5% sampling.
    IntPostcards,
    /// Marple flowlet sizes.
    MarpleFlowletSizes,
    /// Marple TCP out-of-sequence counters.
    MarpleTcpOutOfSequence,
    /// NetSeer loss events.
    NetSeerLossEvents,
}

impl MonitoringSystem {
    /// All Table 1 rows in order.
    pub const ALL: [MonitoringSystem; 4] = [
        MonitoringSystem::IntPostcards,
        MonitoringSystem::MarpleFlowletSizes,
        MonitoringSystem::MarpleTcpOutOfSequence,
        MonitoringSystem::NetSeerLossEvents,
    ];

    /// Display name matching the paper's table.
    pub fn label(self) -> &'static str {
        match self {
            MonitoringSystem::IntPostcards => "INT Postcards (per-hop latency, 0.5% sampling)",
            MonitoringSystem::MarpleFlowletSizes => "Marple (Flowlet sizes)",
            MonitoringSystem::MarpleTcpOutOfSequence => "Marple (TCP out-of-sequence)",
            MonitoringSystem::NetSeerLossEvents => "NetSeer (Loss events)",
        }
    }

    /// Reports generated per forwarded packet.
    ///
    /// * INT postcards: 0.5% sampling.
    /// * Marple flowlets: one report per flowlet eviction, ~1 per 529
    ///   packets (back-derived from the 7.2 Mpps Table 1 row at the model's
    ///   3.81 Gpps switch load).
    /// * Marple TCP OOS: one report per out-of-sequence episode, ~1 in 569.
    /// * NetSeer: one coalesced loss event per ~4010 packets.
    pub fn reports_per_packet(self) -> f64 {
        match self {
            MonitoringSystem::IntPostcards => 0.005,
            MonitoringSystem::MarpleFlowletSizes => 1.0 / 529.0,
            MonitoringSystem::MarpleTcpOutOfSequence => 1.0 / 569.0,
            MonitoringSystem::NetSeerLossEvents => 1.0 / 4010.0,
        }
    }

    /// Report payload bytes (Table 2 / §6 workloads).
    pub fn report_bytes(self) -> usize {
        match self {
            MonitoringSystem::IntPostcards => 4,
            MonitoringSystem::MarpleFlowletSizes => 13,
            MonitoringSystem::MarpleTcpOutOfSequence => 4,
            MonitoringSystem::NetSeerLossEvents => 18,
        }
    }
}

/// Switch-level packet/report rate model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReportRateModel {
    /// Switch capacity in bits per second (6.4 Tb/s in Table 1).
    pub capacity_bps: f64,
    /// Utilization (the paper cites ~40% standard load \[73\]).
    pub load: f64,
    /// Average packet size in bytes. 84 B (64 B minimum frame + preamble
    /// and inter-frame gap) reproduces Table 1's INT row exactly; DC
    /// measurements skew heavily toward minimum-size packets.
    pub avg_packet_bytes: f64,
}

impl Default for ReportRateModel {
    fn default() -> Self {
        ReportRateModel { capacity_bps: 6.4e12, load: 0.4, avg_packet_bytes: 84.0 }
    }
}

impl ReportRateModel {
    /// Packets per second forwarded by the switch.
    pub fn packets_per_sec(&self) -> f64 {
        self.capacity_bps * self.load / (self.avg_packet_bytes * 8.0)
    }

    /// Reports per second a switch running `system` generates (Table 1's
    /// right column).
    pub fn reports_per_sec(&self, system: MonitoringSystem) -> f64 {
        self.packets_per_sec() * system.reports_per_packet()
    }

    /// Aggregate report rate of a network of `switches` reporters (the
    /// x-axis sweep of Figure 3).
    pub fn network_reports_per_sec(&self, system: MonitoringSystem, switches: u64) -> f64 {
        self.reports_per_sec(system) * switches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_int_postcards_19mpps() {
        let m = ReportRateModel::default();
        let r = m.reports_per_sec(MonitoringSystem::IntPostcards);
        assert!((r - 19e6).abs() / 19e6 < 0.01, "INT rate {r:.3e} != ~19M");
    }

    #[test]
    fn table1_marple_flowlets_7_2mpps() {
        let m = ReportRateModel::default();
        let r = m.reports_per_sec(MonitoringSystem::MarpleFlowletSizes);
        assert!((r - 7.2e6).abs() / 7.2e6 < 0.02, "flowlet rate {r:.3e} != ~7.2M");
    }

    #[test]
    fn table1_marple_oos_6_7mpps() {
        let m = ReportRateModel::default();
        let r = m.reports_per_sec(MonitoringSystem::MarpleTcpOutOfSequence);
        assert!((r - 6.7e6).abs() / 6.7e6 < 0.02, "OOS rate {r:.3e} != ~6.7M");
    }

    #[test]
    fn table1_netseer_950kpps() {
        let m = ReportRateModel::default();
        let r = m.reports_per_sec(MonitoringSystem::NetSeerLossEvents);
        assert!((r - 950e3).abs() / 950e3 < 0.02, "NetSeer rate {r:.3e} != ~950K");
    }

    #[test]
    fn network_rate_is_linear_in_switches() {
        let m = ReportRateModel::default();
        let one = m.network_reports_per_sec(MonitoringSystem::IntPostcards, 1);
        let thousand = m.network_reports_per_sec(MonitoringSystem::IntPostcards, 1000);
        assert!((thousand / one - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn report_sizes_match_table2() {
        assert_eq!(MonitoringSystem::NetSeerLossEvents.report_bytes(), 18);
        assert_eq!(MonitoringSystem::MarpleFlowletSizes.report_bytes(), 13);
        assert_eq!(MonitoringSystem::IntPostcards.report_bytes(), 4);
    }
}

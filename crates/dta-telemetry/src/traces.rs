//! Synthetic data-center traffic.
//!
//! The paper's Figure 7b experiment replays "real data center traffic \[7\]"
//! (Benson et al., IMC 2010). Those traces are not redistributable, so we
//! synthesize traffic with their published macro-characteristics: most flows
//! are mice of a few packets while a small fraction of elephants carry most
//! bytes (log-normal-ish flow sizes with a heavy tail), flow popularity is
//! Zipf-distributed across server pairs, and packet interarrivals are
//! bursty. What matters to DTA is the per-flow report volume distribution,
//! which these properties determine.

use dta_core::FlowTuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One trace packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePacket {
    /// Timestamp in nanoseconds.
    pub ts_ns: u64,
    /// The packet's flow.
    pub flow: FlowTuple,
    /// Wire size in bytes.
    pub size: u16,
    /// Whether this packet ends its flow (FIN) — used by sink-based
    /// reporters like INT-MD.
    pub last_of_flow: bool,
}

/// Trace generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Number of distinct hosts.
    pub hosts: u32,
    /// Number of concurrent flows to cycle through.
    pub flows: u32,
    /// Zipf skew for flow popularity (~1.0 in DC measurements).
    pub zipf_s: f64,
    /// Pareto shape for flow sizes (1.2 gives the published mice/elephant
    /// split); scale is fixed at 2 packets minimum.
    pub pareto_alpha: f64,
    /// Mean packet interarrival in nanoseconds (aggregate).
    pub mean_gap_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            hosts: 1024,
            flows: 4096,
            zipf_s: 1.0,
            pareto_alpha: 1.2,
            mean_gap_ns: 100,
            seed: 0xD7A,
        }
    }
}

/// Deterministic synthetic trace generator.
pub struct TraceGenerator {
    config: TraceConfig,
    rng: StdRng,
    /// Active flows with remaining packet budgets.
    flows: Vec<(FlowTuple, u32)>,
    /// Zipf sampling CDF over flow slots.
    cdf: Vec<f64>,
    now_ns: u64,
    next_port: u16,
}

impl TraceGenerator {
    /// Build a generator; precomputes the Zipf CDF over flow slots.
    pub fn new(config: TraceConfig) -> Self {
        assert!(config.hosts >= 2 && config.flows >= 1);
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Zipf CDF over `flows` ranks.
        let weights: Vec<f64> =
            (1..=config.flows).map(|r| 1.0 / (r as f64).powf(config.zipf_s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        let mut gen = TraceGenerator {
            config,
            flows: Vec::with_capacity(config.flows as usize),
            cdf,
            now_ns: 0,
            next_port: 1024,
            rng: StdRng::seed_from_u64(config.seed ^ 0xFEED),
        };
        for _ in 0..config.flows {
            let f = gen.fresh_flow();
            gen.flows.push(f);
        }
        let _ = &mut rng;
        gen
    }

    fn fresh_flow(&mut self) -> (FlowTuple, u32) {
        let src = self.rng.gen_range(0..self.config.hosts);
        let mut dst = self.rng.gen_range(0..self.config.hosts);
        if dst == src {
            dst = (dst + 1) % self.config.hosts;
        }
        self.next_port = self.next_port.wrapping_add(1).max(1024);
        let flow = FlowTuple::tcp(
            0x0A00_0000 + src,
            self.next_port,
            0x0A00_0000 + dst,
            if self.rng.gen_bool(0.7) { 80 } else { 443 },
        );
        // Pareto-distributed flow size in packets (heavy tail).
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        let size = (2.0 / u.powf(1.0 / self.config.pareto_alpha)).min(1e7) as u32;
        (flow, size.max(1))
    }

    /// Sample the next packet.
    pub fn next_packet(&mut self) -> TracePacket {
        // Zipf-pick a flow slot via binary search on the CDF.
        let u: f64 = self.rng.gen();
        let slot = self.cdf.partition_point(|&c| c < u).min(self.flows.len() - 1);
        let (flow, remaining) = self.flows[slot];
        let last = remaining <= 1;
        if last {
            self.flows[slot] = self.fresh_flow();
        } else {
            self.flows[slot].1 = remaining - 1;
        }
        // Bursty interarrivals: exponential via inverse CDF.
        let u: f64 = self.rng.gen_range(1e-12..1.0);
        let gap = (-u.ln() * self.config.mean_gap_ns as f64) as u64;
        self.now_ns += gap.max(1);
        // Bimodal packet sizes: ACK-sized or MTU-sized.
        let size = if self.rng.gen_bool(0.45) { 64 } else { 1500 };
        TracePacket { ts_ns: self.now_ns, flow, size, last_of_flow: last }
    }

    /// Sample `n` packets.
    pub fn take(&mut self, n: usize) -> Vec<TracePacket> {
        (0..n).map(|_| self.next_packet()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn timestamps_are_monotonic() {
        let mut g = TraceGenerator::new(TraceConfig::default());
        let pkts = g.take(5000);
        for w in pkts.windows(2) {
            assert!(w[1].ts_ns > w[0].ts_ns);
        }
    }

    #[test]
    fn flow_popularity_is_skewed() {
        let mut g = TraceGenerator::new(TraceConfig::default());
        let pkts = g.take(50_000);
        let mut counts: HashMap<FlowTuple, u64> = HashMap::new();
        for p in &pkts {
            *counts.entry(p.flow).or_default() += 1;
        }
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        // Top 10% of flows should carry several times their uniform share
        // (flow recycling dilutes raw Zipf skew; uniform would be 10%).
        let top = v.len() / 10;
        let top_sum: u64 = v[..top.max(1)].iter().sum();
        let total: u64 = v.iter().sum();
        assert!(
            top_sum * 10 > total * 3,
            "top decile carries {top_sum}/{total} — not heavy-tailed"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = TraceGenerator::new(TraceConfig::default());
        let mut b = TraceGenerator::new(TraceConfig::default());
        assert_eq!(a.take(1000), b.take(1000));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TraceGenerator::new(TraceConfig::default());
        let mut b = TraceGenerator::new(TraceConfig { seed: 99, ..TraceConfig::default() });
        assert_ne!(a.take(100), b.take(100));
    }

    #[test]
    fn flows_terminate_and_recycle() {
        let mut g = TraceGenerator::new(TraceConfig {
            flows: 8,
            pareto_alpha: 3.0, // mostly tiny flows
            ..TraceConfig::default()
        });
        let pkts = g.take(10_000);
        let fins = pkts.iter().filter(|p| p.last_of_flow).count();
        assert!(fins > 100, "only {fins} flow terminations in 10k packets");
    }
}

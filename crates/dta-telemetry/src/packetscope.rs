//! PacketScope: monitoring the packet lifecycle inside a switch (Table 2).
//!
//! Two DTA integrations:
//! * flow troubleshooting — "report fixed-size per-flow per-switch traversal
//!   information using `<switchID, 5-tuple>` as key" (Key-Write);
//! * pipeline-loss insight — "on packet drop: send 14B pipeline-traversal
//!   information to central list of pipeline-loss events" (Append).

use dta_core::{DtaReport, TelemetryKey};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traces::TracePacket;

/// Per-switch PacketScope instance.
pub struct PacketScope {
    /// This switch's identifier (half of the Key-Write key).
    pub switch_id: u16,
    /// Pipeline-drop probability (synthetic).
    pub drop_prob: f64,
    /// Loss-event list.
    pub list_id: u32,
    /// Redundancy for traversal reports.
    pub redundancy: u8,
    rng: StdRng,
    seq: u32,
}

impl PacketScope {
    /// PacketScope on switch `switch_id`.
    pub fn new(switch_id: u16, drop_prob: f64, list_id: u32, redundancy: u8, seed: u64) -> Self {
        PacketScope {
            switch_id,
            drop_prob,
            list_id,
            redundancy,
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
        }
    }

    /// Traversal info exported per flow: ingress/egress port + stage
    /// latency, 8 B fixed.
    fn traversal_info(&mut self, pkt: &TracePacket) -> Vec<u8> {
        let mut p = Vec::with_capacity(8);
        p.extend_from_slice(&(pkt.flow.src_port ^ 0x1F).to_be_bytes()); // ingress port
        p.extend_from_slice(&(pkt.flow.dst_port ^ 0x2F).to_be_bytes()); // egress port
        p.extend_from_slice(&self.rng.gen_range(100u32..5000).to_be_bytes()); // pipeline ns
        p
    }

    /// Feed one packet: returns a traversal Key-Write, plus a 14 B
    /// pipeline-loss Append when the packet was dropped in-pipeline.
    pub fn on_packet(&mut self, pkt: &TracePacket) -> (DtaReport, Option<DtaReport>) {
        self.seq = self.seq.wrapping_add(1);
        let info = self.traversal_info(pkt);
        let traversal = DtaReport::key_write(
            self.seq,
            TelemetryKey::switch_flow(self.switch_id, &pkt.flow),
            self.redundancy,
            info,
        );
        let drop = self.rng.gen_bool(self.drop_prob).then(|| {
            self.seq = self.seq.wrapping_add(1);
            // 14B: flow (13B) + drop-stage (1B).
            let mut payload = pkt.flow.encode().to_vec();
            payload.push(self.rng.gen_range(0u8..12)); // pipeline stage
            debug_assert_eq!(payload.len(), 14);
            DtaReport::append(self.seq, self.list_id, payload)
        });
        (traversal, drop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::FlowTuple;

    fn pkt() -> TracePacket {
        TracePacket {
            ts_ns: 0,
            flow: FlowTuple::tcp(1, 2, 3, 4),
            size: 64,
            last_of_flow: false,
        }
    }

    #[test]
    fn traversal_keyed_by_switch_and_flow() {
        let mut a = PacketScope::new(1, 0.0, 0, 2, 1);
        let mut b = PacketScope::new(2, 0.0, 0, 2, 1);
        let (ra, _) = a.on_packet(&pkt());
        let (rb, _) = b.on_packet(&pkt());
        let (ka, kb) = match (ra.primitive, rb.primitive) {
            (
                dta_core::PrimitiveHeader::KeyWrite(ha),
                dta_core::PrimitiveHeader::KeyWrite(hb),
            ) => (ha.key, hb.key),
            _ => panic!("wrong primitives"),
        };
        assert_ne!(ka, kb, "same flow on different switches must not alias");
    }

    #[test]
    fn drop_reports_are_14_bytes() {
        let mut ps = PacketScope::new(1, 1.0, 5, 1, 2);
        let (_, drop) = ps.on_packet(&pkt());
        assert_eq!(drop.expect("always drops").payload.len(), 14);
    }

    #[test]
    fn no_drop_no_loss_report() {
        let mut ps = PacketScope::new(1, 0.0, 5, 1, 2);
        let (_, drop) = ps.on_packet(&pkt());
        assert!(drop.is_none());
    }
}

//! Reporter hardware footprints (Figure 9).
//!
//! "We compared the hardware costs associated with generating DTA reports
//! against either directly emitting RDMA calls from switches, or creating
//! UDP-based messages ... DTA is as lightweight as UDP, while RDMA
//! generation is much more expensive" — roughly half the footprint of the
//! RDMA reporter across the six resource classes.
//!
//! The decomposition: every reporter carries the INT-XD monitoring logic and
//! an export path. The UDP export path adds header crafting only; DTA adds
//! the same plus two small fixed headers; RDMA adds RoCEv2 crafting, QP/PSN
//! state, ICRC-able checksum handling, and connection metadata tables.

use dta_switch::ResourceVector;

/// The three reporter variants of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReporterKind {
    /// Switch generates RoCEv2 itself (the strawman of §3).
    Rdma,
    /// DTA's lightweight protocol (the proposed design).
    Dta,
    /// Plain UDP telemetry export (the legacy baseline).
    Udp,
}

impl ReporterKind {
    /// All variants in Figure 9 order.
    pub const ALL: [ReporterKind; 3] = [ReporterKind::Rdma, ReporterKind::Dta, ReporterKind::Udp];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ReporterKind::Rdma => "RDMA",
            ReporterKind::Dta => "DTA",
            ReporterKind::Udp => "UDP",
        }
    }
}

/// The INT-XD monitoring logic common to all three reporters ("a switch
/// implementing a simple INT-XD system", §6.3).
fn int_xd_base() -> ResourceVector {
    ResourceVector {
        sram: 3.4,
        match_xbar: 3.2,
        table_ids: 7.0,
        hash_dist: 2.2,
        ternary_bus: 4.2,
        stateful_alu: 4.2,
    }
}

/// UDP export path: IP/UDP header crafting and forwarding entries.
fn udp_export() -> ResourceVector {
    ResourceVector {
        sram: 1.0,
        match_xbar: 1.6,
        table_ids: 3.0,
        hash_dist: 0.8,
        ternary_bus: 2.0,
        stateful_alu: 2.0,
    }
}

/// DTA's additional cost over UDP: the 8B DTA header + sub-header fields
/// (barely measurable: "an almost identical resource footprint to UDP").
fn dta_extra() -> ResourceVector {
    ResourceVector {
        sram: 0.1,
        match_xbar: 0.3,
        table_ids: 1.0,
        hash_dist: 0.0,
        ternary_bus: 0.3,
        stateful_alu: 0.0,
    }
}

/// RDMA generation: RoCEv2 crafting, per-QP PSN registers, rkey/address
/// metadata tables, redundancy hashing — the cost DTA moves into the
/// translator.
fn rdma_extra() -> ResourceVector {
    ResourceVector {
        sram: 4.6,
        match_xbar: 5.2,
        table_ids: 10.0,
        hash_dist: 3.2,
        ternary_bus: 6.5,
        stateful_alu: 6.6,
    }
}

/// Total footprint of a reporter variant.
pub fn reporter_footprint(kind: ReporterKind) -> ResourceVector {
    let base = int_xd_base();
    match kind {
        ReporterKind::Udp => base + udp_export(),
        ReporterKind::Dta => base + udp_export() + dta_extra(),
        ReporterKind::Rdma => base + udp_export() + rdma_extra(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_switch::ResourceClass;

    #[test]
    fn dta_is_almost_identical_to_udp() {
        let dta = reporter_footprint(ReporterKind::Dta);
        let udp = reporter_footprint(ReporterKind::Udp);
        for c in ResourceClass::ALL {
            let delta = dta.get(c) - udp.get(c);
            assert!(
                (0.0..=1.0).contains(&delta),
                "{}: DTA {} vs UDP {}",
                c.label(),
                dta.get(c),
                udp.get(c)
            );
        }
    }

    #[test]
    fn dta_halves_rdma_footprint() {
        // "DTA halves the resource footprint of reporters compared with
        // RDMA-generating alternatives."
        let dta = reporter_footprint(ReporterKind::Dta);
        let rdma = reporter_footprint(ReporterKind::Rdma);
        let dta_total: f64 = ResourceClass::ALL.iter().map(|c| dta.get(*c)).sum();
        let rdma_total: f64 = ResourceClass::ALL.iter().map(|c| rdma.get(*c)).sum();
        let ratio = dta_total / rdma_total;
        assert!((0.45..=0.65).contains(&ratio), "DTA/RDMA ratio {ratio}");
    }

    #[test]
    fn rdma_dominates_in_every_class() {
        let dta = reporter_footprint(ReporterKind::Dta);
        let rdma = reporter_footprint(ReporterKind::Rdma);
        for c in ResourceClass::ALL {
            assert!(rdma.get(c) >= dta.get(c), "{} regressed", c.label());
        }
    }

    #[test]
    fn all_variants_fit_the_chip() {
        for k in ReporterKind::ALL {
            assert!(reporter_footprint(k).fits());
        }
    }
}

//! The DTA reporter — the switch-side export path.
//!
//! "DTA reports are generated entirely in the data plane and the logic is in
//! charge of encapsulating the telemetry report into a UDP packet followed
//! by the two DTA-specific headers" (§5.1). The reporter is deliberately
//! dumb: no RDMA state, no redundancy generation — that is the whole point
//! of goal #4 (minimal switch resources).
//!
//! * [`reporter`] — packet crafting: telemetry payload → DTA/UDP frame.
//! * [`resources`] — the Figure 9 comparison: DTA vs RDMA-generating vs
//!   plain-UDP reporter footprints.

pub mod reporter;
pub mod resources;

pub use reporter::{
    PacedReporterNode, Reporter, ReporterConfig, ReporterFleetNode, ReporterNode,
    RetransmitPolicy, RetxStats,
};
pub use resources::{reporter_footprint, ReporterKind};

//! Reporter packet crafting, and the reporter end of the congestion loop
//! (§5.2): decoding translator NACKs and deterministically retransmitting
//! the dropped report from a bounded in-flight window.

use std::collections::VecDeque;

use bytes::Bytes;
use dta_core::framing::UdpPacket;
use dta_core::nack::decode_nack;
use dta_core::{DtaReport, DTA_UDP_PORT};
use dta_net::{Emission, NetNode, NodeId, Packet, SimTime};

/// Reporter addressing configuration (the controller-populated tables of
/// §5.1: "inserting collector IP addresses for the DTA primitives").
#[derive(Debug, Clone, Copy)]
pub struct ReporterConfig {
    /// This switch's node id.
    pub my_id: NodeId,
    /// This switch's IP.
    pub my_ip: u32,
    /// The collector's node id (reports route toward it; the translator
    /// intercepts).
    pub collector_id: NodeId,
    /// The collector's IP.
    pub collector_ip: u32,
    /// UDP source port for this reporter's exports.
    pub src_port: u16,
}

/// The switch-side DTA report exporter.
#[derive(Debug)]
pub struct Reporter {
    config: ReporterConfig,
    /// Reports exported.
    pub exported: u64,
}

impl Reporter {
    /// Reporter with the given addressing.
    pub fn new(config: ReporterConfig) -> Self {
        Reporter { config, exported: 0 }
    }

    /// Frame one DTA report for the wire.
    pub fn frame(&mut self, report: &DtaReport) -> Packet {
        let payload = report.encode().expect("report within payload bound");
        let udp = UdpPacket::frame(
            self.config.my_ip,
            self.config.src_port,
            self.config.collector_ip,
            DTA_UDP_PORT,
            payload,
        );
        self.exported += 1;
        Packet::new(self.config.my_id, self.config.collector_id, udp.encode())
    }

    /// Frame a batch of reports.
    pub fn frame_all(&mut self, reports: &[DtaReport]) -> Vec<Packet> {
        reports.iter().map(|r| self.frame(r)).collect()
    }

    /// The reporter's addressing.
    pub fn config(&self) -> &ReporterConfig {
        &self.config
    }
}

/// Reporter-side NACK-driven retransmit policy (the loop-closing half of
/// §5.2's "NACK sent back to the reporter in case of a dropped report").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitPolicy {
    /// In-flight window: how many recently framed reports stay buffered
    /// for retransmission. DTA has no ACKs, so entries leave the window
    /// only by eviction — a NACK for an evicted seq counts as
    /// `nacks_unmatched` and the report is lost (best-effort, by design).
    pub window: usize,
    /// Retransmissions allowed per report; a NACK arriving after the
    /// budget is spent counts as `retries_exhausted`.
    pub max_retries: u32,
    /// Node-internal delay before a NACKed report re-enters the wire.
    /// Pacing the retransmit burst gives the translator's token bucket
    /// time to refill; it is modeled as an [`Emission::after`] delay on
    /// the simulated clock, so retransmit timing is deterministic.
    pub pace_ns: u64,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy { window: 1024, max_retries: 8, pace_ns: 20_000 }
    }
}

/// Counters of the reporter end of the congestion loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetxStats {
    /// Inbound packets that decoded as DTA NACKs.
    pub nacks_received: u64,
    /// Inbound packets that were anything else (stray user traffic).
    pub stray_received: u64,
    /// Reports re-emitted in response to a NACK.
    pub retransmitted: u64,
    /// NACKs for reports whose retry budget was already spent.
    pub retries_exhausted: u64,
    /// NACKs whose seq was not in the in-flight window (evicted or never
    /// ours).
    pub nacks_unmatched: u64,
}

impl RetxStats {
    /// Accumulate `other` into `self` (fleet-wide aggregation).
    pub fn merge(&mut self, other: &RetxStats) {
        self.nacks_received += other.nacks_received;
        self.stray_received += other.stray_received;
        self.retransmitted += other.retransmitted;
        self.retries_exhausted += other.retries_exhausted;
        self.nacks_unmatched += other.nacks_unmatched;
    }

    /// Every NACK is answered one way: retransmitted, budget-exhausted,
    /// or unmatched. The congestion tests assert this ledger closes.
    pub fn ledger_closes(&self) -> bool {
        self.nacks_received
            == self.retransmitted + self.retries_exhausted + self.nacks_unmatched
    }
}

/// One buffered in-flight report.
struct WindowEntry {
    seq: u32,
    retries: u32,
    report: DtaReport,
}

/// The bounded in-flight window shared by [`PacedReporterNode`] and each
/// [`ReporterFleetNode`] lane.
struct RetxWindow {
    policy: RetransmitPolicy,
    entries: VecDeque<WindowEntry>,
}

impl RetxWindow {
    fn new(policy: RetransmitPolicy) -> Self {
        RetxWindow { policy, entries: VecDeque::with_capacity(policy.window.max(1)) }
    }

    /// Remember a just-framed report (evicting the oldest at capacity —
    /// a loop, not a single pop, so a window shrunk by a later
    /// `set_retransmit` really trims down to the new bound).
    fn record(&mut self, report: &DtaReport) {
        while self.entries.len() >= self.policy.window.max(1) {
            self.entries.pop_front();
        }
        self.entries.push_back(WindowEntry {
            seq: report.header.seq,
            retries: 0,
            report: report.clone(),
        });
    }

    /// Answer a NACK for `seq`: the report to retransmit, or `None` with
    /// the reason counted in `stats`. Searches newest-first so a seq that
    /// somehow recurs resolves to its latest incarnation.
    fn on_nack(&mut self, seq: u32, stats: &mut RetxStats) -> Option<DtaReport> {
        let Some(entry) = self.entries.iter_mut().rev().find(|e| e.seq == seq) else {
            stats.nacks_unmatched += 1;
            return None;
        };
        if entry.retries >= self.policy.max_retries {
            stats.retries_exhausted += 1;
            return None;
        }
        entry.retries += 1;
        stats.retransmitted += 1;
        Some(entry.report.clone())
    }
}

/// Classify one delivered packet: `Some((dst_ip, seq))` for a DTA NACK
/// (the destination IP selects the fleet lane it answers), else stray.
/// The translator always emits NACKs from [`dta_core::DTA_NACK_PORT`];
/// checking it keeps stray user traffic whose payload happens to start
/// `DNAK` from triggering a spurious retransmission.
fn decode_inbound(packet: &Packet) -> Option<(u32, u32)> {
    let udp = UdpPacket::decode(packet.payload.clone()).ok()?;
    if udp.udp.src_port != dta_core::DTA_NACK_PORT {
        return None;
    }
    let seq = decode_nack(&udp.payload)?;
    Some((udp.ip.dst, seq))
}

/// A reporter wrapped as a network node that forwards nothing (leaf switch
/// role); exposed for harnesses that drive reporters via ticks.
pub struct ReporterNode {
    /// The reporter.
    pub reporter: Reporter,
    /// Reports queued for the next tick.
    pub outbox: Vec<DtaReport>,
}

impl ReporterNode {
    /// Node wrapper.
    pub fn new(reporter: Reporter) -> Self {
        ReporterNode { reporter, outbox: Vec::new() }
    }

    /// Queue a report for emission at the next tick.
    pub fn enqueue(&mut self, report: DtaReport) {
        self.outbox.push(report);
    }
}

impl NetNode for ReporterNode {
    fn receive(&mut self, _now: SimTime, _packet: Packet, _out: &mut Vec<Emission>) {
        // NACKs and user traffic terminate here.
    }

    fn tick(&mut self, _now: SimTime, out: &mut Vec<Emission>) -> bool {
        let reports: Vec<DtaReport> = self.outbox.drain(..).collect();
        out.extend(reports.iter().map(|r| Emission::now(self.reporter.frame(r))));
        true // the outbox can refill at any time
    }
}

/// A reporter driving a fixed schedule of reports at a bounded rate — the
/// scenario harness's fleet member.
///
/// [`ReporterNode`] dumps its whole outbox on one tick, which models a
/// one-shot export; a fleet scenario needs *pacing* so thousands of
/// reporters don't serialize their entire run into a single burst that
/// tail-drops at the first ToR queue. `PacedReporterNode` emits at most
/// `reports_per_tick` reports per tick until its schedule is exhausted,
/// then goes quiet (its ticks become no-ops). All state is handed over at
/// construction, so a simulation owns the node completely — the engine's
/// tick events are the only driver, keeping runs deterministic on the
/// simulated clock.
pub struct PacedReporterNode {
    /// The underlying framer.
    pub reporter: Reporter,
    schedule: Vec<DtaReport>,
    cursor: usize,
    reports_per_tick: usize,
    /// In-flight window, when retransmission is enabled.
    retx: Option<RetxWindow>,
    /// Congestion-loop counters (NACK/stray split, retransmissions).
    pub retx_stats: RetxStats,
    /// Packets delivered *to* this node — always
    /// `retx_stats.nacks_received + retx_stats.stray_received` (kept as
    /// the sum for golden compatibility).
    pub received: u64,
}

impl PacedReporterNode {
    /// A fleet reporter that will emit `schedule` in order, at most
    /// `reports_per_tick` per tick.
    pub fn new(reporter: Reporter, schedule: Vec<DtaReport>, reports_per_tick: usize) -> Self {
        PacedReporterNode {
            reporter,
            schedule,
            cursor: 0,
            reports_per_tick: reports_per_tick.max(1),
            retx: None,
            retx_stats: RetxStats::default(),
            received: 0,
        }
    }

    /// Enable NACK-driven retransmission from a bounded in-flight window.
    pub fn with_retransmit(mut self, policy: RetransmitPolicy) -> Self {
        self.retx = Some(RetxWindow::new(policy));
        self
    }

    /// Reports not yet emitted.
    pub fn pending(&self) -> usize {
        self.schedule.len() - self.cursor
    }

    /// Ticks needed to drain a schedule of `len` reports at
    /// `reports_per_tick` — the scenario harness sizes its emission window
    /// from this.
    pub fn ticks_to_drain(len: usize, reports_per_tick: usize) -> u64 {
        (len as u64).div_ceil(reports_per_tick.max(1) as u64)
    }
}

impl NetNode for PacedReporterNode {
    fn receive(&mut self, _now: SimTime, packet: Packet, out: &mut Vec<Emission>) {
        self.received += 1;
        let Some((_dst_ip, seq)) = decode_inbound(&packet) else {
            self.retx_stats.stray_received += 1;
            return;
        };
        self.retx_stats.nacks_received += 1;
        let Some(window) = self.retx.as_mut() else {
            // NACKs decode and count even with retransmission disabled;
            // without a window the report is simply not recoverable.
            self.retx_stats.nacks_unmatched += 1;
            return;
        };
        if let Some(report) = window.on_nack(seq, &mut self.retx_stats) {
            let pace = window.policy.pace_ns;
            out.push(Emission::after(self.reporter.frame(&report), pace));
        }
    }

    fn tick(&mut self, _now: SimTime, out: &mut Vec<Emission>) -> bool {
        let end = (self.cursor + self.reports_per_tick).min(self.schedule.len());
        for r in &self.schedule[self.cursor..end] {
            if let Some(window) = self.retx.as_mut() {
                window.record(r);
            }
            out.push(Emission::now(self.reporter.frame(r)));
        }
        self.cursor = end;
        // A drained schedule never refills: cancel the tick series instead
        // of burning an engine event every period for the rest of the run.
        // (NACK-driven retransmits ride on `receive`, not on ticks, so the
        // cancellation cannot strand them.)
        self.cursor < self.schedule.len()
    }
}

/// One co-located reporter of a [`ReporterFleetNode`]: its framer, its
/// paced schedule, and (when enabled) its in-flight retransmit window.
struct Lane {
    reporter: Reporter,
    schedule: Vec<DtaReport>,
    cursor: usize,
    retx: Option<RetxWindow>,
}

/// Several paced reporters sharing one host node (and its uplink).
///
/// A K=8 fat tree has 128 hosts; a thousand-reporter fleet therefore needs
/// reporters co-located on hosts — each *lane* is a full [`Reporter`] with
/// its own source IP and schedule, paced independently at
/// `reports_per_tick`, all multiplexed onto the host's single network
/// attachment. With one lane this is exactly [`PacedReporterNode`]
/// (emission order and framing byte-identical), which is what lets the
/// scenario harness use it unconditionally.
pub struct ReporterFleetNode {
    lanes: Vec<Lane>,
    reports_per_tick: usize,
    /// Retransmit policy applied to every lane (set before or after adding
    /// lanes; `None` disables retransmission).
    retx_policy: Option<RetransmitPolicy>,
    /// Host-wide congestion-loop counters (all lanes).
    pub retx_stats: RetxStats,
    /// Packets delivered *to* this host — always
    /// `retx_stats.nacks_received + retx_stats.stray_received` (kept as
    /// the sum for golden compatibility).
    pub received: u64,
}

impl ReporterFleetNode {
    /// Empty fleet host pacing each lane at `reports_per_tick`.
    pub fn new(reports_per_tick: usize) -> Self {
        ReporterFleetNode {
            lanes: Vec::new(),
            reports_per_tick: reports_per_tick.max(1),
            retx_policy: None,
            retx_stats: RetxStats::default(),
            received: 0,
        }
    }

    /// Enable NACK-driven retransmission on every lane (existing and
    /// future). Calling again re-applies the new policy to every lane:
    /// existing windows keep their buffered entries (an oversized buffer
    /// trims itself on the next record), only the policy changes.
    pub fn set_retransmit(&mut self, policy: RetransmitPolicy) {
        self.retx_policy = Some(policy);
        for lane in &mut self.lanes {
            match lane.retx.as_mut() {
                Some(window) => window.policy = policy,
                None => lane.retx = Some(RetxWindow::new(policy)),
            }
        }
    }

    /// Add a co-located reporter with its schedule. Lanes emit in insertion
    /// order within each tick.
    pub fn add_lane(&mut self, reporter: Reporter, schedule: Vec<DtaReport>) {
        let retx = self.retx_policy.map(RetxWindow::new);
        self.lanes.push(Lane { reporter, schedule, cursor: 0, retx });
    }

    /// Number of co-located reporters.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Reports not yet emitted, across all lanes.
    pub fn pending(&self) -> usize {
        self.lanes.iter().map(|l| l.schedule.len() - l.cursor).sum()
    }

    /// Total reports exported, across all lanes.
    pub fn exported(&self) -> u64 {
        self.lanes.iter().map(|l| l.reporter.exported).sum()
    }
}

impl NetNode for ReporterFleetNode {
    fn receive(&mut self, _now: SimTime, packet: Packet, out: &mut Vec<Emission>) {
        self.received += 1;
        let Some((dst_ip, seq)) = decode_inbound(&packet) else {
            self.retx_stats.stray_received += 1;
            return;
        };
        self.retx_stats.nacks_received += 1;
        // The NACK's destination IP names the lane whose report was
        // dropped (every lane has its own source address).
        let Some(lane) =
            self.lanes.iter_mut().find(|l| l.reporter.config().my_ip == dst_ip)
        else {
            self.retx_stats.nacks_unmatched += 1;
            return;
        };
        let Some(window) = lane.retx.as_mut() else {
            self.retx_stats.nacks_unmatched += 1;
            return;
        };
        if let Some(report) = window.on_nack(seq, &mut self.retx_stats) {
            let pace = window.policy.pace_ns;
            out.push(Emission::after(lane.reporter.frame(&report), pace));
        }
    }

    fn tick(&mut self, _now: SimTime, out: &mut Vec<Emission>) -> bool {
        for lane in &mut self.lanes {
            let end = (lane.cursor + self.reports_per_tick).min(lane.schedule.len());
            for r in &lane.schedule[lane.cursor..end] {
                if let Some(window) = lane.retx.as_mut() {
                    window.record(r);
                }
                out.push(Emission::now(lane.reporter.frame(r)));
            }
            lane.cursor = end;
        }
        // Cancel the tick series once every lane has drained (retransmits
        // ride on `receive`, so cancellation cannot strand them).
        self.lanes.iter().any(|l| l.cursor < l.schedule.len())
    }
}

/// Convenience: a raw UDP telemetry frame (the legacy export format DTA
/// replaces) — used by resource/overhead comparisons.
pub fn legacy_udp_frame(
    config: &ReporterConfig,
    telemetry_payload: Bytes,
) -> Packet {
    let udp = UdpPacket::frame(
        config.my_ip,
        config.src_port,
        config.collector_ip,
        DTA_UDP_PORT,
        telemetry_payload,
    );
    Packet::new(config.my_id, config.collector_id, udp.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::TelemetryKey;

    fn config() -> ReporterConfig {
        ReporterConfig {
            my_id: NodeId(1),
            my_ip: 0x0A00_0001,
            collector_id: NodeId(9),
            collector_ip: 0x0A00_0009,
            src_port: 5555,
        }
    }

    #[test]
    fn framed_report_decodes_end_to_end() {
        let mut r = Reporter::new(config());
        let report = DtaReport::key_write(3, TelemetryKey::from_u64(1), 2, vec![1, 2, 3, 4]);
        let pkt = r.frame(&report);
        let udp = UdpPacket::decode(pkt.payload).unwrap();
        assert_eq!(udp.udp.dst_port, DTA_UDP_PORT);
        assert_eq!(DtaReport::decode(udp.payload).unwrap(), report);
        assert_eq!(r.exported, 1);
    }

    #[test]
    fn dta_overhead_vs_legacy_udp_is_small() {
        // Goal #4: DTA's wire overhead over raw UDP telemetry is just the
        // two DTA headers (8B fixed + primitive sub-header).
        let mut r = Reporter::new(config());
        let report = DtaReport::append(0, 1, vec![0u8; 4]);
        let dta_len = r.frame(&report).wire_len();
        let legacy_len = legacy_udp_frame(&config(), Bytes::from(vec![0u8; 4])).wire_len();
        assert_eq!(dta_len - legacy_len, 8 + 4 /* Append sub-header */);
    }

    #[test]
    fn paced_node_emits_at_most_n_per_tick_then_goes_quiet() {
        let schedule: Vec<DtaReport> =
            (0..7u32).map(|i| DtaReport::append(i, 1, i.to_be_bytes().to_vec())).collect();
        let mut node = PacedReporterNode::new(Reporter::new(config()), schedule, 3);
        assert_eq!(node.pending(), 7);
        assert_eq!(PacedReporterNode::ticks_to_drain(7, 3), 3);
        let sizes: Vec<usize> = (0..5)
            .map(|_| {
                let mut out = Vec::new();
                node.tick(SimTime::ZERO, &mut out);
                out.len()
            })
            .collect();
        assert_eq!(sizes, [3, 3, 1, 0, 0]);
        assert_eq!(node.pending(), 0);
        assert_eq!(node.reporter.exported, 7);
        // Inbound non-NACK packets terminate, counted as stray.
        let pkt = legacy_udp_frame(&config(), Bytes::from_static(b"nack"));
        let mut out = Vec::new();
        node.receive(SimTime::ZERO, pkt, &mut out);
        assert!(out.is_empty());
        assert_eq!(node.received, 1);
        assert_eq!(node.retx_stats.stray_received, 1);
        assert_eq!(node.retx_stats.nacks_received, 0);
    }

    #[test]
    fn fleet_node_paces_each_lane_and_cancels_when_drained() {
        let mut node = ReporterFleetNode::new(2);
        for lane in 0..3u32 {
            let schedule: Vec<DtaReport> = (0..lane + 2)
                .map(|i| DtaReport::append(i, 1, i.to_be_bytes().to_vec()))
                .collect();
            node.add_lane(Reporter::new(config()), schedule);
        }
        assert_eq!(node.lanes(), 3);
        assert_eq!(node.pending(), 2 + 3 + 4);
        let mut out = Vec::new();
        // Tick 1: every lane emits up to 2.
        assert!(node.tick(SimTime::ZERO, &mut out));
        assert_eq!(out.len(), 2 + 2 + 2);
        // Tick 2: lanes 1 and 2 finish; the series keeps going until then.
        out.clear();
        assert!(!node.tick(SimTime::ZERO, &mut out), "drained fleet cancels its ticks");
        assert_eq!(out.len(), 1 + 2);
        assert_eq!(node.pending(), 0);
        assert_eq!(node.exported(), 9);
        // Inbound non-NACK packets terminate, counted as stray.
        let pkt = legacy_udp_frame(&config(), Bytes::from_static(b"nack"));
        out.clear();
        node.receive(SimTime::ZERO, pkt, &mut out);
        assert!(out.is_empty());
        assert_eq!(node.received, 1);
        assert_eq!(node.retx_stats.stray_received, 1);
    }

    /// Frame a NACK for `seq` addressed to `dst_ip`, as the translator
    /// would emit it.
    fn nack_packet(dst_ip: u32, seq: u32) -> Packet {
        let udp = UdpPacket::frame(
            0x0A00_0001,
            dta_core::DTA_NACK_PORT,
            dst_ip,
            5555,
            dta_core::encode_nack(seq),
        );
        Packet::new(NodeId(7), NodeId(1), udp.encode())
    }

    /// Decode the DTA report inside an emitted packet.
    fn emitted_report(e: &Emission) -> DtaReport {
        let udp = UdpPacket::decode(e.packet.payload.clone()).unwrap();
        DtaReport::decode(udp.payload).unwrap()
    }

    #[test]
    fn paced_node_retransmits_nacked_report_from_window() {
        let schedule: Vec<DtaReport> =
            (0..3u32).map(|i| DtaReport::append(i, 1, i.to_be_bytes().to_vec())).collect();
        let policy = RetransmitPolicy { window: 8, max_retries: 1, pace_ns: 500 };
        let mut node = PacedReporterNode::new(Reporter::new(config()), schedule.clone(), 8)
            .with_retransmit(policy);
        let mut out = Vec::new();
        node.tick(SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 3);

        // NACK for seq 1: the exact report re-emits, paced by pace_ns.
        out.clear();
        node.receive(SimTime::ZERO, nack_packet(config().my_ip, 1), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].delay_ns, 500, "retransmit must be paced");
        assert_eq!(emitted_report(&out[0]), schedule[1]);
        assert_eq!(node.retx_stats.nacks_received, 1);
        assert_eq!(node.retx_stats.retransmitted, 1);

        // Second NACK for the same seq: budget (1) spent.
        out.clear();
        node.receive(SimTime::ZERO, nack_packet(config().my_ip, 1), &mut out);
        assert!(out.is_empty());
        assert_eq!(node.retx_stats.retries_exhausted, 1);

        // NACK for a seq never sent: unmatched.
        node.receive(SimTime::ZERO, nack_packet(config().my_ip, 99), &mut out);
        assert!(out.is_empty());
        assert_eq!(node.retx_stats.nacks_unmatched, 1);
        assert!(node.retx_stats.ledger_closes());
        assert_eq!(node.received, 3);
    }

    #[test]
    fn window_eviction_bounds_recovery() {
        let schedule: Vec<DtaReport> =
            (0..4u32).map(|i| DtaReport::append(i, 1, i.to_be_bytes().to_vec())).collect();
        let policy = RetransmitPolicy { window: 2, max_retries: 8, pace_ns: 0 };
        let mut node = PacedReporterNode::new(Reporter::new(config()), schedule, 8)
            .with_retransmit(policy);
        let mut out = Vec::new();
        node.tick(SimTime::ZERO, &mut out);
        // Seqs 0 and 1 were evicted by 2 and 3 (window of 2).
        out.clear();
        node.receive(SimTime::ZERO, nack_packet(config().my_ip, 0), &mut out);
        assert!(out.is_empty());
        assert_eq!(node.retx_stats.nacks_unmatched, 1);
        node.receive(SimTime::ZERO, nack_packet(config().my_ip, 3), &mut out);
        assert_eq!(out.len(), 1, "in-window seq must still retransmit");
        assert!(node.retx_stats.ledger_closes());
    }

    #[test]
    fn fleet_node_routes_nack_to_the_owning_lane() {
        let mut node = ReporterFleetNode::new(8);
        node.set_retransmit(RetransmitPolicy { window: 8, max_retries: 2, pace_ns: 100 });
        for lane in 0..2u32 {
            let mut cfg = config();
            cfg.my_ip = 0x0A02_0000 + lane;
            // Globally unique seqs, as the scenario workload generator
            // assigns them.
            let schedule: Vec<DtaReport> = (0..2u32)
                .map(|i| DtaReport::append(lane * 2 + i, 1, vec![lane as u8; 4]))
                .collect();
            node.add_lane(Reporter::new(cfg), schedule);
        }
        let mut out = Vec::new();
        node.tick(SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 4);
        // Seq 2 belongs to lane 1; the NACK is addressed to lane 1's IP.
        out.clear();
        node.receive(SimTime::ZERO, nack_packet(0x0A02_0001, 2), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(emitted_report(&out[0]).payload.as_ref(), &[1u8; 4]);
        assert_eq!(node.retx_stats.retransmitted, 1);
        // A NACK addressed to an IP no lane owns is unmatched, not a panic.
        out.clear();
        node.receive(SimTime::ZERO, nack_packet(0x0A02_0099, 2), &mut out);
        assert!(out.is_empty());
        assert_eq!(node.retx_stats.nacks_unmatched, 1);
        assert!(node.retx_stats.ledger_closes());
    }

    #[test]
    fn nack_lookalike_from_wrong_source_port_is_stray() {
        // An 8-byte user payload starting "DNAK" is only a NACK when it
        // comes from the translator's NACK port — anything else must not
        // trigger a retransmission.
        let schedule = vec![DtaReport::append(0, 1, vec![1; 4])];
        let mut node = PacedReporterNode::new(Reporter::new(config()), schedule, 8)
            .with_retransmit(RetransmitPolicy::default());
        let mut out = Vec::new();
        node.tick(SimTime::ZERO, &mut out);
        out.clear();
        let spoof = UdpPacket::frame(
            0x0A00_0001,
            8080, // not DTA_NACK_PORT
            config().my_ip,
            5555,
            dta_core::encode_nack(0),
        );
        node.receive(SimTime::ZERO, Packet::new(NodeId(7), NodeId(1), spoof.encode()), &mut out);
        assert!(out.is_empty(), "spoofed NACK retransmitted");
        assert_eq!(node.retx_stats.stray_received, 1);
        assert_eq!(node.retx_stats.nacks_received, 0);
    }

    #[test]
    fn shrinking_the_window_trims_existing_buffers() {
        // 11 reports paced 10/tick: tick 1 buffers 10 entries under a
        // wide window; the window is then shrunk to 2 and tick 2 records
        // the 11th — which must trim all the way down to the new bound.
        let mut node = ReporterFleetNode::new(10);
        node.set_retransmit(RetransmitPolicy { window: 64, max_retries: 4, pace_ns: 0 });
        let schedule: Vec<DtaReport> =
            (0..11u32).map(|i| DtaReport::append(i, 1, vec![0; 4])).collect();
        node.add_lane(Reporter::new(config()), schedule);
        let mut out = Vec::new();
        node.tick(SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 10);
        node.set_retransmit(RetransmitPolicy { window: 2, max_retries: 4, pace_ns: 0 });
        out.clear();
        node.tick(SimTime::ZERO, &mut out); // records seq 10, trims to 2
        assert_eq!(out.len(), 1);
        out.clear();
        node.receive(SimTime::ZERO, nack_packet(config().my_ip, 3), &mut out);
        assert!(out.is_empty(), "seq outside the shrunk window must not retransmit");
        assert_eq!(node.retx_stats.nacks_unmatched, 1);
        node.receive(SimTime::ZERO, nack_packet(config().my_ip, 10), &mut out);
        assert_eq!(out.len(), 1, "newest seq must survive the trim");
    }

    #[test]
    fn set_retransmit_reapplies_policy_to_existing_lanes() {
        let mut node = ReporterFleetNode::new(8);
        node.set_retransmit(RetransmitPolicy { window: 8, max_retries: 4, pace_ns: 100 });
        node.add_lane(
            Reporter::new(config()),
            vec![DtaReport::append(0, 1, vec![1; 4])],
        );
        // Tighten the policy after the lane exists: the lane must follow.
        node.set_retransmit(RetransmitPolicy { window: 8, max_retries: 4, pace_ns: 9_000 });
        let mut out = Vec::new();
        node.tick(SimTime::ZERO, &mut out);
        out.clear();
        node.receive(SimTime::ZERO, nack_packet(config().my_ip, 0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].delay_ns, 9_000, "existing lane kept the stale pacing policy");
    }

    #[test]
    fn nack_without_retransmit_policy_still_splits_counters() {
        let mut node = PacedReporterNode::new(Reporter::new(config()), Vec::new(), 1);
        let mut out = Vec::new();
        node.receive(SimTime::ZERO, nack_packet(config().my_ip, 5), &mut out);
        assert!(out.is_empty(), "no policy, no retransmit");
        assert_eq!(node.retx_stats.nacks_received, 1);
        assert_eq!(node.retx_stats.nacks_unmatched, 1);
        assert_eq!(node.received, 1);
        assert!(node.retx_stats.ledger_closes());
    }

    #[test]
    fn node_emits_queued_reports_on_tick() {
        let mut node = ReporterNode::new(Reporter::new(config()));
        node.enqueue(DtaReport::append(0, 1, vec![1; 4]));
        node.enqueue(DtaReport::append(1, 1, vec![2; 4]));
        let mut emissions = Vec::new();
        node.tick(SimTime::ZERO, &mut emissions);
        assert_eq!(emissions.len(), 2);
        emissions.clear();
        node.tick(SimTime::ZERO, &mut emissions);
        assert!(emissions.is_empty(), "outbox drained");
    }
}

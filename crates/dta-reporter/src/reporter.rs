//! Reporter packet crafting.

use bytes::Bytes;
use dta_core::framing::UdpPacket;
use dta_core::{DtaReport, DTA_UDP_PORT};
use dta_net::{Emission, NetNode, NodeId, Packet, SimTime};

/// Reporter addressing configuration (the controller-populated tables of
/// §5.1: "inserting collector IP addresses for the DTA primitives").
#[derive(Debug, Clone, Copy)]
pub struct ReporterConfig {
    /// This switch's node id.
    pub my_id: NodeId,
    /// This switch's IP.
    pub my_ip: u32,
    /// The collector's node id (reports route toward it; the translator
    /// intercepts).
    pub collector_id: NodeId,
    /// The collector's IP.
    pub collector_ip: u32,
    /// UDP source port for this reporter's exports.
    pub src_port: u16,
}

/// The switch-side DTA report exporter.
#[derive(Debug)]
pub struct Reporter {
    config: ReporterConfig,
    /// Reports exported.
    pub exported: u64,
}

impl Reporter {
    /// Reporter with the given addressing.
    pub fn new(config: ReporterConfig) -> Self {
        Reporter { config, exported: 0 }
    }

    /// Frame one DTA report for the wire.
    pub fn frame(&mut self, report: &DtaReport) -> Packet {
        let payload = report.encode().expect("report within payload bound");
        let udp = UdpPacket::frame(
            self.config.my_ip,
            self.config.src_port,
            self.config.collector_ip,
            DTA_UDP_PORT,
            payload,
        );
        self.exported += 1;
        Packet::new(self.config.my_id, self.config.collector_id, udp.encode())
    }

    /// Frame a batch of reports.
    pub fn frame_all(&mut self, reports: &[DtaReport]) -> Vec<Packet> {
        reports.iter().map(|r| self.frame(r)).collect()
    }
}

/// A reporter wrapped as a network node that forwards nothing (leaf switch
/// role); exposed for harnesses that drive reporters via ticks.
pub struct ReporterNode {
    /// The reporter.
    pub reporter: Reporter,
    /// Reports queued for the next tick.
    pub outbox: Vec<DtaReport>,
}

impl ReporterNode {
    /// Node wrapper.
    pub fn new(reporter: Reporter) -> Self {
        ReporterNode { reporter, outbox: Vec::new() }
    }

    /// Queue a report for emission at the next tick.
    pub fn enqueue(&mut self, report: DtaReport) {
        self.outbox.push(report);
    }
}

impl NetNode for ReporterNode {
    fn receive(&mut self, _now: SimTime, _packet: Packet) -> Vec<Emission> {
        // NACKs and user traffic terminate here.
        Vec::new()
    }

    fn tick(&mut self, _now: SimTime) -> Vec<Emission> {
        let reports: Vec<DtaReport> = self.outbox.drain(..).collect();
        reports
            .iter()
            .map(|r| Emission::now(self.reporter.frame(r)))
            .collect()
    }
}

/// Convenience: a raw UDP telemetry frame (the legacy export format DTA
/// replaces) — used by resource/overhead comparisons.
pub fn legacy_udp_frame(
    config: &ReporterConfig,
    telemetry_payload: Bytes,
) -> Packet {
    let udp = UdpPacket::frame(
        config.my_ip,
        config.src_port,
        config.collector_ip,
        DTA_UDP_PORT,
        telemetry_payload,
    );
    Packet::new(config.my_id, config.collector_id, udp.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::TelemetryKey;

    fn config() -> ReporterConfig {
        ReporterConfig {
            my_id: NodeId(1),
            my_ip: 0x0A00_0001,
            collector_id: NodeId(9),
            collector_ip: 0x0A00_0009,
            src_port: 5555,
        }
    }

    #[test]
    fn framed_report_decodes_end_to_end() {
        let mut r = Reporter::new(config());
        let report = DtaReport::key_write(3, TelemetryKey::from_u64(1), 2, vec![1, 2, 3, 4]);
        let pkt = r.frame(&report);
        let udp = UdpPacket::decode(pkt.payload).unwrap();
        assert_eq!(udp.udp.dst_port, DTA_UDP_PORT);
        assert_eq!(DtaReport::decode(udp.payload).unwrap(), report);
        assert_eq!(r.exported, 1);
    }

    #[test]
    fn dta_overhead_vs_legacy_udp_is_small() {
        // Goal #4: DTA's wire overhead over raw UDP telemetry is just the
        // two DTA headers (8B fixed + primitive sub-header).
        let mut r = Reporter::new(config());
        let report = DtaReport::append(0, 1, vec![0u8; 4]);
        let dta_len = r.frame(&report).wire_len();
        let legacy_len = legacy_udp_frame(&config(), Bytes::from(vec![0u8; 4])).wire_len();
        assert_eq!(dta_len - legacy_len, 8 + 4 /* Append sub-header */);
    }

    #[test]
    fn node_emits_queued_reports_on_tick() {
        let mut node = ReporterNode::new(Reporter::new(config()));
        node.enqueue(DtaReport::append(0, 1, vec![1; 4]));
        node.enqueue(DtaReport::append(1, 1, vec![2; 4]));
        let emissions = node.tick(SimTime::ZERO);
        assert_eq!(emissions.len(), 2);
        assert!(node.tick(SimTime::ZERO).is_empty(), "outbox drained");
    }
}

//! Reporter packet crafting.

use bytes::Bytes;
use dta_core::framing::UdpPacket;
use dta_core::{DtaReport, DTA_UDP_PORT};
use dta_net::{Emission, NetNode, NodeId, Packet, SimTime};

/// Reporter addressing configuration (the controller-populated tables of
/// §5.1: "inserting collector IP addresses for the DTA primitives").
#[derive(Debug, Clone, Copy)]
pub struct ReporterConfig {
    /// This switch's node id.
    pub my_id: NodeId,
    /// This switch's IP.
    pub my_ip: u32,
    /// The collector's node id (reports route toward it; the translator
    /// intercepts).
    pub collector_id: NodeId,
    /// The collector's IP.
    pub collector_ip: u32,
    /// UDP source port for this reporter's exports.
    pub src_port: u16,
}

/// The switch-side DTA report exporter.
#[derive(Debug)]
pub struct Reporter {
    config: ReporterConfig,
    /// Reports exported.
    pub exported: u64,
}

impl Reporter {
    /// Reporter with the given addressing.
    pub fn new(config: ReporterConfig) -> Self {
        Reporter { config, exported: 0 }
    }

    /// Frame one DTA report for the wire.
    pub fn frame(&mut self, report: &DtaReport) -> Packet {
        let payload = report.encode().expect("report within payload bound");
        let udp = UdpPacket::frame(
            self.config.my_ip,
            self.config.src_port,
            self.config.collector_ip,
            DTA_UDP_PORT,
            payload,
        );
        self.exported += 1;
        Packet::new(self.config.my_id, self.config.collector_id, udp.encode())
    }

    /// Frame a batch of reports.
    pub fn frame_all(&mut self, reports: &[DtaReport]) -> Vec<Packet> {
        reports.iter().map(|r| self.frame(r)).collect()
    }
}

/// A reporter wrapped as a network node that forwards nothing (leaf switch
/// role); exposed for harnesses that drive reporters via ticks.
pub struct ReporterNode {
    /// The reporter.
    pub reporter: Reporter,
    /// Reports queued for the next tick.
    pub outbox: Vec<DtaReport>,
}

impl ReporterNode {
    /// Node wrapper.
    pub fn new(reporter: Reporter) -> Self {
        ReporterNode { reporter, outbox: Vec::new() }
    }

    /// Queue a report for emission at the next tick.
    pub fn enqueue(&mut self, report: DtaReport) {
        self.outbox.push(report);
    }
}

impl NetNode for ReporterNode {
    fn receive(&mut self, _now: SimTime, _packet: Packet, _out: &mut Vec<Emission>) {
        // NACKs and user traffic terminate here.
    }

    fn tick(&mut self, _now: SimTime, out: &mut Vec<Emission>) -> bool {
        let reports: Vec<DtaReport> = self.outbox.drain(..).collect();
        out.extend(reports.iter().map(|r| Emission::now(self.reporter.frame(r))));
        true // the outbox can refill at any time
    }
}

/// A reporter driving a fixed schedule of reports at a bounded rate — the
/// scenario harness's fleet member.
///
/// [`ReporterNode`] dumps its whole outbox on one tick, which models a
/// one-shot export; a fleet scenario needs *pacing* so thousands of
/// reporters don't serialize their entire run into a single burst that
/// tail-drops at the first ToR queue. `PacedReporterNode` emits at most
/// `reports_per_tick` reports per tick until its schedule is exhausted,
/// then goes quiet (its ticks become no-ops). All state is handed over at
/// construction, so a simulation owns the node completely — the engine's
/// tick events are the only driver, keeping runs deterministic on the
/// simulated clock.
pub struct PacedReporterNode {
    /// The underlying framer.
    pub reporter: Reporter,
    schedule: Vec<DtaReport>,
    cursor: usize,
    reports_per_tick: usize,
    /// Packets delivered *to* this node (NACKs and stray user traffic
    /// terminate here).
    pub received: u64,
}

impl PacedReporterNode {
    /// A fleet reporter that will emit `schedule` in order, at most
    /// `reports_per_tick` per tick.
    pub fn new(reporter: Reporter, schedule: Vec<DtaReport>, reports_per_tick: usize) -> Self {
        PacedReporterNode {
            reporter,
            schedule,
            cursor: 0,
            reports_per_tick: reports_per_tick.max(1),
            received: 0,
        }
    }

    /// Reports not yet emitted.
    pub fn pending(&self) -> usize {
        self.schedule.len() - self.cursor
    }

    /// Ticks needed to drain a schedule of `len` reports at
    /// `reports_per_tick` — the scenario harness sizes its emission window
    /// from this.
    pub fn ticks_to_drain(len: usize, reports_per_tick: usize) -> u64 {
        (len as u64).div_ceil(reports_per_tick.max(1) as u64)
    }
}

impl NetNode for PacedReporterNode {
    fn receive(&mut self, _now: SimTime, _packet: Packet, _out: &mut Vec<Emission>) {
        self.received += 1;
    }

    fn tick(&mut self, _now: SimTime, out: &mut Vec<Emission>) -> bool {
        let end = (self.cursor + self.reports_per_tick).min(self.schedule.len());
        out.extend(
            self.schedule[self.cursor..end]
                .iter()
                .map(|r| Emission::now(self.reporter.frame(r))),
        );
        self.cursor = end;
        // A drained schedule never refills: cancel the tick series instead
        // of burning an engine event every period for the rest of the run.
        self.cursor < self.schedule.len()
    }
}

/// One co-located reporter of a [`ReporterFleetNode`]: its framer and its
/// paced schedule.
struct Lane {
    reporter: Reporter,
    schedule: Vec<DtaReport>,
    cursor: usize,
}

/// Several paced reporters sharing one host node (and its uplink).
///
/// A K=8 fat tree has 128 hosts; a thousand-reporter fleet therefore needs
/// reporters co-located on hosts — each *lane* is a full [`Reporter`] with
/// its own source IP and schedule, paced independently at
/// `reports_per_tick`, all multiplexed onto the host's single network
/// attachment. With one lane this is exactly [`PacedReporterNode`]
/// (emission order and framing byte-identical), which is what lets the
/// scenario harness use it unconditionally.
pub struct ReporterFleetNode {
    lanes: Vec<Lane>,
    reports_per_tick: usize,
    /// Packets delivered *to* this host (NACKs and stray user traffic
    /// terminate here).
    pub received: u64,
}

impl ReporterFleetNode {
    /// Empty fleet host pacing each lane at `reports_per_tick`.
    pub fn new(reports_per_tick: usize) -> Self {
        ReporterFleetNode {
            lanes: Vec::new(),
            reports_per_tick: reports_per_tick.max(1),
            received: 0,
        }
    }

    /// Add a co-located reporter with its schedule. Lanes emit in insertion
    /// order within each tick.
    pub fn add_lane(&mut self, reporter: Reporter, schedule: Vec<DtaReport>) {
        self.lanes.push(Lane { reporter, schedule, cursor: 0 });
    }

    /// Number of co-located reporters.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Reports not yet emitted, across all lanes.
    pub fn pending(&self) -> usize {
        self.lanes.iter().map(|l| l.schedule.len() - l.cursor).sum()
    }

    /// Total reports exported, across all lanes.
    pub fn exported(&self) -> u64 {
        self.lanes.iter().map(|l| l.reporter.exported).sum()
    }
}

impl NetNode for ReporterFleetNode {
    fn receive(&mut self, _now: SimTime, _packet: Packet, _out: &mut Vec<Emission>) {
        self.received += 1;
    }

    fn tick(&mut self, _now: SimTime, out: &mut Vec<Emission>) -> bool {
        for lane in &mut self.lanes {
            let end = (lane.cursor + self.reports_per_tick).min(lane.schedule.len());
            out.extend(
                lane.schedule[lane.cursor..end]
                    .iter()
                    .map(|r| Emission::now(lane.reporter.frame(r))),
            );
            lane.cursor = end;
        }
        // Cancel the tick series once every lane has drained.
        self.lanes.iter().any(|l| l.cursor < l.schedule.len())
    }
}

/// Convenience: a raw UDP telemetry frame (the legacy export format DTA
/// replaces) — used by resource/overhead comparisons.
pub fn legacy_udp_frame(
    config: &ReporterConfig,
    telemetry_payload: Bytes,
) -> Packet {
    let udp = UdpPacket::frame(
        config.my_ip,
        config.src_port,
        config.collector_ip,
        DTA_UDP_PORT,
        telemetry_payload,
    );
    Packet::new(config.my_id, config.collector_id, udp.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::TelemetryKey;

    fn config() -> ReporterConfig {
        ReporterConfig {
            my_id: NodeId(1),
            my_ip: 0x0A00_0001,
            collector_id: NodeId(9),
            collector_ip: 0x0A00_0009,
            src_port: 5555,
        }
    }

    #[test]
    fn framed_report_decodes_end_to_end() {
        let mut r = Reporter::new(config());
        let report = DtaReport::key_write(3, TelemetryKey::from_u64(1), 2, vec![1, 2, 3, 4]);
        let pkt = r.frame(&report);
        let udp = UdpPacket::decode(pkt.payload).unwrap();
        assert_eq!(udp.udp.dst_port, DTA_UDP_PORT);
        assert_eq!(DtaReport::decode(udp.payload).unwrap(), report);
        assert_eq!(r.exported, 1);
    }

    #[test]
    fn dta_overhead_vs_legacy_udp_is_small() {
        // Goal #4: DTA's wire overhead over raw UDP telemetry is just the
        // two DTA headers (8B fixed + primitive sub-header).
        let mut r = Reporter::new(config());
        let report = DtaReport::append(0, 1, vec![0u8; 4]);
        let dta_len = r.frame(&report).wire_len();
        let legacy_len = legacy_udp_frame(&config(), Bytes::from(vec![0u8; 4])).wire_len();
        assert_eq!(dta_len - legacy_len, 8 + 4 /* Append sub-header */);
    }

    #[test]
    fn paced_node_emits_at_most_n_per_tick_then_goes_quiet() {
        let schedule: Vec<DtaReport> =
            (0..7u32).map(|i| DtaReport::append(i, 1, i.to_be_bytes().to_vec())).collect();
        let mut node = PacedReporterNode::new(Reporter::new(config()), schedule, 3);
        assert_eq!(node.pending(), 7);
        assert_eq!(PacedReporterNode::ticks_to_drain(7, 3), 3);
        let sizes: Vec<usize> = (0..5)
            .map(|_| {
                let mut out = Vec::new();
                node.tick(SimTime::ZERO, &mut out);
                out.len()
            })
            .collect();
        assert_eq!(sizes, [3, 3, 1, 0, 0]);
        assert_eq!(node.pending(), 0);
        assert_eq!(node.reporter.exported, 7);
        // Inbound packets (NACKs) terminate and are counted.
        let pkt = legacy_udp_frame(&config(), Bytes::from_static(b"nack"));
        let mut out = Vec::new();
        node.receive(SimTime::ZERO, pkt, &mut out);
        assert!(out.is_empty());
        assert_eq!(node.received, 1);
    }

    #[test]
    fn fleet_node_paces_each_lane_and_cancels_when_drained() {
        let mut node = ReporterFleetNode::new(2);
        for lane in 0..3u32 {
            let schedule: Vec<DtaReport> = (0..lane + 2)
                .map(|i| DtaReport::append(i, 1, i.to_be_bytes().to_vec()))
                .collect();
            node.add_lane(Reporter::new(config()), schedule);
        }
        assert_eq!(node.lanes(), 3);
        assert_eq!(node.pending(), 2 + 3 + 4);
        let mut out = Vec::new();
        // Tick 1: every lane emits up to 2.
        assert!(node.tick(SimTime::ZERO, &mut out));
        assert_eq!(out.len(), 2 + 2 + 2);
        // Tick 2: lanes 1 and 2 finish; the series keeps going until then.
        out.clear();
        assert!(!node.tick(SimTime::ZERO, &mut out), "drained fleet cancels its ticks");
        assert_eq!(out.len(), 1 + 2);
        assert_eq!(node.pending(), 0);
        assert_eq!(node.exported(), 9);
        // Inbound packets terminate and count.
        let pkt = legacy_udp_frame(&config(), Bytes::from_static(b"nack"));
        out.clear();
        node.receive(SimTime::ZERO, pkt, &mut out);
        assert!(out.is_empty());
        assert_eq!(node.received, 1);
    }

    #[test]
    fn node_emits_queued_reports_on_tick() {
        let mut node = ReporterNode::new(Reporter::new(config()));
        node.enqueue(DtaReport::append(0, 1, vec![1; 4]));
        node.enqueue(DtaReport::append(1, 1, vec![2; 4]));
        let mut emissions = Vec::new();
        node.tick(SimTime::ZERO, &mut emissions);
        assert_eq!(emissions.len(), 2);
        emissions.clear();
        node.tick(SimTime::ZERO, &mut emissions);
        assert!(emissions.is_empty(), "outbox drained");
    }
}

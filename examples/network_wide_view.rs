//! Full-network simulation: a fat-tree fabric where every edge switch
//! reports INT path-tracing data through the event-driven network to a
//! translator intercepting at the collector's ToR — packets, links, loss,
//! RoCE ACKs and all (Figure 1's architecture end to end).
//!
//! ```sh
//! cargo run --example network_wide_view
//! ```

use dta::collector::service::{CollectorService, ServiceConfig, SERVICE_KW};
use dta::collector::{CollectorNode, QueryOutcome, QueryPolicy};
use dta::core::TelemetryKey;
use dta::net::{FatTree, FaultConfig, FaultInjector, LinkConfig, Network, SimTime};
use dta::rdma::cm::CmRequester;
use dta::reporter::reporter::Reporter;
use dta::reporter::ReporterConfig;
use dta::telemetry::int::IntPathTracing;
use dta::telemetry::traces::{TraceConfig, TraceGenerator};
use dta::translator::{Translator, TranslatorConfig, TranslatorNode};

fn main() {
    // A k=4 fat tree: 20 switches, 16 hosts. The collector is host (0,0,0);
    // its edge switch (pod 0, edge 0) runs the translator.
    let ft = FatTree::new(4);
    let collector_host = ft.host(0, 0, 0);
    let translator_switch = ft.edge(0, 0);
    println!(
        "fat-tree k=4: {} switches, {} hosts; collector at {collector_host}, translator at {translator_switch}",
        ft.num_switches(),
        ft.num_hosts()
    );

    let routing = ft.topology.shortest_path_routing();
    let mut net = Network::new(routing);
    for (a, b) in ft.topology.edges() {
        net.add_duplex_link(a, b, LinkConfig::dc_100g());
    }
    // 0.5% loss on one core uplink: DTA must tolerate it.
    net.add_faults(
        ft.agg(0, 0),
        ft.core(0),
        FaultInjector::new(FaultConfig::lossy(0.005), 99),
    );

    // Collector service + CM handshake with the translator (out of band, as
    // the switch-CPU control plane does in §5.2).
    let mut service = CollectorService::new(ServiceConfig {
        kw_bytes: 32 << 20,
        kw_value_bytes: 20,
        ..ServiceConfig::default()
    });
    let mut translator = Translator::new(TranslatorConfig::default());
    let req = CmRequester::new(0x88, 0);
    let reply = service.handle_cm(&req.request(SERVICE_KW));
    let (qp, params) = req.complete(&reply).expect("kw published");
    translator.connect_key_write(qp, params);

    let collector_ip = 0x0A00_0900;
    let translator_ip = 0x0A00_0001;
    net.add_node(
        collector_host,
        Box::new(CollectorNode::new(service, collector_host, collector_ip)),
    );
    net.add_interceptor(
        translator_switch,
        Box::new(TranslatorNode::new(
            translator,
            translator_switch,
            translator_ip,
            collector_host,
            collector_ip,
        )),
    );

    // Every *other* edge switch is an INT sink reporting 5-hop paths for
    // flows it terminates.
    let mut trace = TraceGenerator::new(TraceConfig { flows: 512, ..TraceConfig::default() });
    let mut int = IntPathTracing::new(5, 1 << 12, 2);
    let mut queried_keys = Vec::new();
    let mut report_count = 0u64;
    for pod in 0..4u32 {
        for e in 0..2u32 {
            let sw = ft.edge(pod, e);
            if sw == translator_switch {
                continue;
            }
            let mut reporter = Reporter::new(ReporterConfig {
                my_id: sw,
                my_ip: 0x0A01_0000 + sw.0,
                collector_id: collector_host,
                collector_ip,
                src_port: 5000 + sw.0 as u16,
            });
            // Each sink reports 200 flows' paths.
            for _ in 0..200 {
                let pkt = trace.next_packet();
                let report = int.on_packet(&pkt);
                if queried_keys.len() < 10 {
                    queried_keys.push((pkt.flow, TelemetryKey::flow(&pkt.flow)));
                }
                let frame = reporter.frame(&report);
                net.send_from(sw, frame);
                report_count += 1;
            }
        }
    }

    net.run_until(SimTime::from_millis(100));
    println!(
        "sent {report_count} reports; network stats: {} delivered, {} intercepted, {} forwarded, {} dropped",
        net.stats.delivered, net.stats.intercepted, net.stats.forwarded, net.stats.dropped
    );

    // Take the collector node back out and run operator queries against its
    // Key-Write store.
    let node: Box<dyn std::any::Any> =
        net.remove_node(collector_host).expect("collector registered");
    let collector = node.downcast::<CollectorNode>().expect("collector node type");
    println!(
        "collector NIC: {} ops executed, {} NAKs",
        collector.stats.executed, collector.stats.naks
    );
    let store = collector.service.keywrite.as_ref().expect("kw enabled");
    let mut found = 0;
    for (flow, key) in &queried_keys {
        match store.query(key, 2, QueryPolicy::Plurality) {
            QueryOutcome::Found(v) => {
                found += 1;
                let hops: Vec<u32> = v
                    .chunks(4)
                    .map(|c| u32::from_be_bytes(c.try_into().unwrap()))
                    .collect();
                let truth = dta::telemetry::int::synthetic_path(flow, 5, 1 << 12);
                println!(
                    "flow {flow}: path {hops:?} {}",
                    if hops == truth { "(matches fabric routing)" } else { "(STALE)" }
                );
            }
            other => println!("flow {flow}: {other:?}"),
        }
    }
    println!("{found}/{} flow paths retrieved across the simulated fabric", queried_keys.len());
}

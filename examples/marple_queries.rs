//! Marple queries over DTA (the Figure 7b workloads).
//!
//! Three Marple queries run on a simulated switch against a synthetic DC
//! trace; their reports flow through the translator into the collector:
//!
//! * Lossy Flows  -> Append lists bucketed by loss-rate range
//! * TCP Timeouts -> Key-Write keyed by flow
//! * Flowlet Sizes-> Append lists bucketed by flowlet size
//!
//! ```sh
//! cargo run --example marple_queries
//! ```

use dta::collector::service::{CollectorService, ServiceConfig, SERVICE_APPEND, SERVICE_KW};
use dta::collector::{QueryOutcome, QueryPolicy};
use dta::core::TelemetryKey;
use dta::rdma::cm::CmRequester;
use dta::telemetry::marple::{MarpleFlowletSizes, MarpleLossyFlows, MarpleTcpTimeouts};
use dta::telemetry::traces::{TraceConfig, TraceGenerator};
use dta::translator::{Translator, TranslatorConfig};

/// Lossy-flow lists start here (one per loss-rate range).
const LOSSY_BASE_LIST: u32 = 0;
/// Flowlet-size lists start here (one per log2 size bucket).
const FLOWLET_BASE_LIST: u32 = 8;

fn main() {
    let mut collector = CollectorService::new(ServiceConfig {
        append_lists: 16,
        append_entries: 1 << 16,
        append_entry_bytes: 20, // 13B flow id + counter, padded
        ..ServiceConfig::default()
    });
    let mut translator = Translator::new(TranslatorConfig {
        append_batch: 8,
        ..TranslatorConfig::default()
    });
    for service in [SERVICE_KW, SERVICE_APPEND] {
        let req = CmRequester::new(0x30 + service as u32, 0);
        let reply = collector.handle_cm(&req.request(service));
        let (qp, params) = req.complete(&reply).expect("published");
        match service {
            SERVICE_KW => translator.connect_key_write(qp, params),
            SERVICE_APPEND => translator.connect_append(qp, params),
            _ => unreachable!(),
        }
    }

    // The three Marple queries on the switch.
    let mut lossy = MarpleLossyFlows::new(0.01, LOSSY_BASE_LIST, 0.03, 64, 1);
    let mut timeouts = MarpleTcpTimeouts::new(0.002, 2, 2);
    let mut flowlets = MarpleFlowletSizes::new(500_000, FLOWLET_BASE_LIST, 6);

    let mut trace = TraceGenerator::new(TraceConfig::default());
    let mut sample_flow = None;
    for _ in 0..300_000 {
        let pkt = trace.next_packet();
        let reports = [
            lossy.on_packet(&pkt),
            timeouts.on_packet(&pkt),
            flowlets.on_packet(&pkt),
        ];
        for report in reports.into_iter().flatten() {
            for roce in translator.process(pkt.ts_ns, &report).packets {
                collector.nic_ingress(&roce);
            }
        }
        if timeouts.true_count(&pkt.flow) >= 2 {
            sample_flow.get_or_insert(pkt.flow);
        }
    }
    // Push out partial batches so recent reports are pollable.
    for roce in translator.flush(u64::MAX).packets {
        collector.nic_ingress(&roce);
    }

    println!("flowlet reports  : {}", flowlets.emitted);
    println!("translator stats : {} reports -> {} RDMA messages", translator.stats.reports_in, translator.stats.rdma_out);

    // Operator query 1: recent lossy flows in the worst loss-rate range.
    let reader = collector.append.as_mut().expect("append enabled");
    let recent: Vec<Vec<u8>> = reader.poll_n(LOSSY_BASE_LIST + 2, 3);
    println!("3 worst-range lossy-flow records (13B flow ids): {:?}",
        recent.iter().map(|e| &e[..13]).collect::<Vec<_>>());

    // Operator query 2: timeouts for a flow that actually timed out.
    if let Some(flow) = sample_flow {
        let kw = collector.keywrite.as_ref().unwrap();
        match kw.query(&TelemetryKey::flow(&flow), 2, QueryPolicy::Plurality) {
            QueryOutcome::Found(v) => {
                let count = u32::from_be_bytes(v[..4].try_into().unwrap());
                println!(
                    "flow {flow}: {count} TCP timeouts reported (ground truth {})",
                    timeouts.true_count(&flow)
                );
            }
            other => println!("flow {flow}: {other:?}"),
        }
    }

    // Operator query 3: flowlet-size histogram from the bucketed lists.
    let reader = collector.append.as_mut().unwrap();
    let hist: Vec<u64> = (0..6).map(|b| reader.tail(FLOWLET_BASE_LIST + b)).collect();
    println!("flowlet log2-size bucket tails (polled so far): {hist:?}");
}

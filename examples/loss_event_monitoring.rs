//! Network-wide loss-event monitoring with NetSeer + DTA Append.
//!
//! Several switches detect packet drops and export coalesced 18 B loss
//! events; the translator batches them into per-switch collector lists. The
//! immediate flag demonstrates DTA's push-notification path (§7): flagged
//! events raise RDMA-immediate completions the collector CPU can react to.
//!
//! ```sh
//! cargo run --example loss_event_monitoring
//! ```

use dta::collector::service::{CollectorService, ServiceConfig, SERVICE_APPEND};
use dta::core::header::DtaFlags;
use dta::rdma::cm::CmRequester;
use dta::telemetry::netseer::NetSeer;
use dta::telemetry::traces::{TraceConfig, TraceGenerator};
use dta::translator::{Translator, TranslatorConfig};

const SWITCHES: usize = 4;

fn main() {
    let mut collector = CollectorService::new(ServiceConfig {
        append_lists: SWITCHES as u32,
        append_entries: 1 << 14,
        append_entry_bytes: 18, // NetSeer loss events are 18B
        ..ServiceConfig::default()
    });
    let mut translator = Translator::new(TranslatorConfig {
        append_batch: 4,
        ..TranslatorConfig::default()
    });
    let req = CmRequester::new(0x44, 0);
    let reply = collector.handle_cm(&req.request(SERVICE_APPEND));
    let (qp, params) = req.complete(&reply).expect("published");
    translator.connect_append(qp, params);

    // One NetSeer instance per switch, with different loss conditions (one
    // switch has a failing link).
    let mut switches: Vec<NetSeer> = (0..SWITCHES)
        .map(|i| {
            let loss = if i == 2 { 0.05 } else { 0.0005 };
            NetSeer::new(loss, 8, i as u32, i as u64)
        })
        .collect();

    let mut trace = TraceGenerator::new(TraceConfig::default());
    for _ in 0..200_000 {
        let pkt = trace.next_packet();
        for ns in switches.iter_mut() {
            if let Some(mut report) = ns.on_packet(&pkt) {
                // Large coalesced events get the immediate flag so the
                // collector CPU is interrupted instead of polling.
                let count = u32::from_be_bytes(report.payload[14..18].try_into().unwrap());
                if count >= 2 {
                    report = report.with_flags(DtaFlags { immediate: true, nack_on_drop: false });
                }
                for roce in translator.process(pkt.ts_ns, &report).packets {
                    collector.nic_ingress(&roce);
                }
            }
        }
    }
    for roce in translator.flush(u64::MAX).packets {
        collector.nic_ingress(&roce);
    }

    println!("per-switch loss events emitted:");
    for (i, ns) in switches.iter().enumerate() {
        println!("  switch {i}: {:>6} events", ns.emitted);
    }

    // Push notifications that raised completions at the collector CPU.
    let mut interrupts = 0;
    while collector.nic.poll_completion().is_some() {
        interrupts += 1;
    }
    println!("immediate interrupts delivered to collector CPU: {interrupts}");

    // Drain the faulty switch's list chronologically.
    let reader = collector.append.as_mut().unwrap();
    let total = reader.poll_n(2, 6);
    println!("first 6 events from the faulty switch's list:");
    for e in total {
        let kind = e[13];
        let count = u32::from_be_bytes(e[14..18].try_into().unwrap());
        println!("  flow {:?}.. kind={kind} coalesced={count}", &e[..4]);
    }
    println!(
        "memory instructions at collector: {} for {} translated messages",
        collector.memory_instructions(),
        translator.stats.rdma_out
    );
}

//! Quickstart: one reporter, one translator, one collector — all four DTA
//! primitives end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dta::collector::service::{
    CollectorService, ServiceConfig, SERVICE_APPEND, SERVICE_CMS, SERVICE_KW, SERVICE_POSTCARD,
};
use dta::collector::{PostcardQueryOutcome, QueryOutcome, QueryPolicy};
use dta::core::{DtaReport, FlowTuple, TelemetryKey};
use dta::rdma::cm::CmRequester;
use dta::translator::{Translator, TranslatorConfig};

fn main() {
    // 1. Bring up a collector hosting all four primitive stores; it
    //    publishes one CM service per primitive (§5.3).
    let mut collector = CollectorService::new(ServiceConfig::default());

    // 2. The translator (the collector's ToR switch) connects to each
    //    service, learning rkeys, base addresses, and slot geometry.
    let mut translator = Translator::new(TranslatorConfig {
        append_batch: 4,
        ..TranslatorConfig::default()
    });
    for (service, qpn) in [
        (SERVICE_KW, 0x11),
        (SERVICE_POSTCARD, 0x12),
        (SERVICE_APPEND, 0x13),
        (SERVICE_CMS, 0x14),
    ] {
        let req = CmRequester::new(qpn, 0);
        let reply = collector.handle_cm(&req.request(service));
        let (qp, params) = req.complete(&reply).expect("service published");
        match service {
            SERVICE_KW => translator.connect_key_write(qp, params),
            SERVICE_POSTCARD => translator.connect_postcarding(qp, params),
            SERVICE_APPEND => translator.connect_append(qp, params),
            SERVICE_CMS => translator.connect_key_increment(qp, params),
            _ => unreachable!(),
        }
    }

    // Helper: run a report through translation + the collector NIC.
    let run = |tr: &mut Translator, col: &mut CollectorService, r: DtaReport| {
        for pkt in tr.process(0, &r).packets {
            col.nic_ingress(&pkt);
        }
    };

    let flow = FlowTuple::tcp(0x0A00_0001, 443, 0x0A00_0002, 8080);
    let key = TelemetryKey::flow(&flow);

    // 3. Key-Write: store a per-flow value with redundancy 2.
    run(&mut translator, &mut collector, DtaReport::key_write(0, key, 2, vec![0xDE, 0xAD, 0xBE, 0xEF]));
    let kw = collector.keywrite.as_ref().unwrap();
    match kw.query(&key, 2, QueryPolicy::Plurality) {
        QueryOutcome::Found(v) => println!("Key-Write     : flow {flow} -> {v:02x?}"),
        other => println!("Key-Write     : {other:?}"),
    }

    // 4. Postcarding: five per-hop INT postcards aggregate at the
    //    translator into a single RDMA write.
    for (hop, switch_id) in [11u32, 22, 33, 44, 55].iter().enumerate() {
        run(
            &mut translator,
            &mut collector,
            DtaReport::postcard(0, key, hop as u8, 5, *switch_id),
        );
    }
    let pc = collector.postcarding.as_ref().unwrap();
    match pc.query(&key, 1) {
        PostcardQueryOutcome::Found(path) => println!("Postcarding   : flow path = {path:?}"),
        other => println!("Postcarding   : {other:?}"),
    }

    // 5. Append: loss events batch into list 3 (batch size 4).
    for i in 0..8u32 {
        run(&mut translator, &mut collector, DtaReport::append(i, 3, (1000 + i).to_be_bytes().to_vec()));
    }
    let reader = collector.append.as_mut().unwrap();
    let events: Vec<u32> = (0..8)
        .map(|_| u32::from_be_bytes(reader.poll(3).try_into().unwrap()))
        .collect();
    println!("Append        : list 3 events = {events:?}");

    // 6. Key-Increment: counters aggregate by addition (count-min).
    for _ in 0..5 {
        run(&mut translator, &mut collector, DtaReport::key_increment(0, key, 2, 10));
    }
    let ki = collector.key_increment.as_ref().unwrap();
    println!("Key-Increment : counter = {}", ki.query(&key, 2));

    println!(
        "\nmemory instructions at collector: {} (CPU was never involved)",
        collector.memory_instructions()
    );
    let stats = translator.stats;
    println!(
        "translator    : {} reports in -> {} RDMA messages out",
        stats.reports_in, stats.rdma_out
    );
}

//! INT path tracing over a simulated fat-tree.
//!
//! INT-XD postcards from every hop of sampled packets flow to the
//! translator, which aggregates each flow's postcards into a single RDMA
//! write (the Postcarding primitive). The operator then asks: "which path
//! did flow X take?"
//!
//! ```sh
//! cargo run --example int_path_tracing
//! ```

use dta::collector::service::{CollectorService, ServiceConfig, SERVICE_POSTCARD};
use dta::collector::PostcardQueryOutcome;
use dta::core::TelemetryKey;
use dta::rdma::cm::CmRequester;
use dta::telemetry::int::{synthetic_path, IntPostcards};
use dta::telemetry::traces::{TraceConfig, TraceGenerator};
use dta::translator::{Translator, TranslatorConfig};

fn main() {
    const SWITCH_IDS: u32 = 1 << 12;

    let mut collector = CollectorService::new(ServiceConfig {
        postcard_bytes: 64 << 20,
        postcard_values: SWITCH_IDS,
        ..ServiceConfig::default()
    });
    let mut translator = Translator::new(TranslatorConfig {
        postcard_values: SWITCH_IDS,
        postcard_redundancy: 2,
        ..TranslatorConfig::default()
    });
    let req = CmRequester::new(0x21, 0);
    let reply = collector.handle_cm(&req.request(SERVICE_POSTCARD));
    let (qp, params) = req.complete(&reply).expect("postcarding published");
    translator.connect_postcarding(qp, params);

    // Sampled INT-XD postcards over a synthetic DC trace (1% sampling).
    let mut trace = TraceGenerator::new(TraceConfig::default());
    let mut int = IntPostcards::new(0.01, 5, SWITCH_IDS, 0xDA7A);
    let mut observed = Vec::new();
    for _ in 0..200_000 {
        let pkt = trace.next_packet();
        let reports = int.on_packet(&pkt);
        if !reports.is_empty() && observed.len() < 5 && observed.iter().all(|f| *f != pkt.flow) {
            observed.push(pkt.flow); // this flow was sampled: queryable later
        }
        for report in reports {
            for roce in translator.process(pkt.ts_ns, &report).packets {
                collector.nic_ingress(&roce);
            }
        }
    }

    println!(
        "ingested {} postcards; translator emitted {} RDMA writes ({} complete aggregates, {} early)",
        int.emitted,
        translator.stats.rdma_out,
        translator.postcard_cache().stats.complete_emissions,
        translator.postcard_cache().stats.early_emissions,
    );

    // Query the stored paths for a few flows we saw, and cross-check
    // against the ground-truth synthetic routing.
    let store = collector.postcarding.as_ref().expect("store enabled");
    let mut hits = 0;
    let mut total = 0;
    for flow in &observed {
        let key = TelemetryKey::flow(flow);
        total += 1;
        match store.query(&key, 2) {
            PostcardQueryOutcome::Found(path) => {
                let truth = synthetic_path(flow, 5, SWITCH_IDS);
                let ok = path == truth;
                hits += ok as u32;
                println!("flow {flow}: path {path:?} ({})", if ok { "matches routing" } else { "STALE" });
            }
            other => println!("flow {flow}: {other:?} (not sampled or aged out)"),
        }
    }
    println!("verified {hits}/{total} queried paths against ground truth");
}

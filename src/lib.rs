//! # dta — Direct Telemetry Access in Rust
//!
//! A from-scratch reproduction of *Direct Telemetry Access* (SIGCOMM 2023):
//! a telemetry collection system that moves hundreds of millions of switch
//! reports per second into queryable collector memory over RDMA, with zero
//! collector-CPU involvement.
//!
//! The paper's hardware (Tofino switches, BlueField-2 RDMA NICs, 100G
//! links) is replaced by faithful software substrates — see `DESIGN.md` for
//! the substitution table. The public API re-exports each subsystem:
//!
//! * [`core`] — the DTA wire protocol (headers, primitives, framing).
//! * [`hash`] — the CRC engine and hash families.
//! * [`net`] — the event-driven network simulator (links, faults,
//!   fat-trees).
//! * [`rdma`] — the software RoCEv2 stack (verbs, QPs, memory regions, NIC).
//! * [`switch`] — the programmable-switch pipeline model.
//! * [`telemetry`] — monitoring systems producing reports (INT, Marple,
//!   NetSeer, ...).
//! * [`reporter`] — the switch-side DTA exporter.
//! * [`translator`] — the DTA→RDMA translator (the paper's contribution).
//! * [`collector`] — the collector's write-only stores and query engines.
//! * [`sim`] — the end-to-end scenario harness (reporter fleets → faulty
//!   fat-tree fabric → translator ToR → collector, from one declarative
//!   spec).
//! * [`baselines`] — CPU-collector baselines (MultiLog, Cuckoo, BTrDB,
//!   INTCollector).
//! * [`analysis`] — closed-form error bounds and experiment tooling.
//!
//! ## Quickstart
//!
//! ```rust
//! use dta::collector::service::{CollectorService, ServiceConfig, SERVICE_KW};
//! use dta::core::{DtaReport, TelemetryKey};
//! use dta::rdma::cm::CmRequester;
//! use dta::translator::{Translator, TranslatorConfig};
//!
//! // Collector publishes its Key-Write service; the translator connects.
//! let mut collector = CollectorService::new(ServiceConfig::default());
//! let mut translator = Translator::new(TranslatorConfig::default());
//! let req = CmRequester::new(0x77, 0);
//! let reply = collector.handle_cm(&req.request(SERVICE_KW));
//! let (qp, params) = req.complete(&reply).unwrap();
//! translator.connect_key_write(qp, params);
//!
//! // A switch reports a key-value pair; the translator converts it into
//! // RDMA writes, which land in collector memory with no CPU involvement.
//! let key = TelemetryKey::from_u64(42);
//! let report = DtaReport::key_write(0, key, 2, vec![0xAB; 4]);
//! for pkt in translator.process(0, &report).packets {
//!     collector.nic_ingress(&pkt);
//! }
//!
//! // The operator queries the key back.
//! let store = collector.keywrite.as_ref().unwrap();
//! let out = store.query(&key, 2, dta::collector::QueryPolicy::Plurality);
//! assert!(out.is_found());
//! ```

pub use dta_analysis as analysis;
pub use dta_baselines as baselines;
pub use dta_collector as collector;
pub use dta_core as core;
pub use dta_hash as hash;
pub use dta_net as net;
pub use dta_rdma as rdma;
pub use dta_reporter as reporter;
pub use dta_sim as sim;
pub use dta_switch as switch;
pub use dta_telemetry as telemetry;
pub use dta_translator as translator;
